//! Resource cost model: the named constants every generator sizes itself
//! with, and the parallelism rules that map layer shapes onto hardware.
//!
//! Calibration targets (see EXPERIMENTS.md): VGG-16 lands near the paper's
//! Table II (~283 k LUTs, ~2100 DSPs, several hundred BRAM on the
//! xcku5p-like part); LeNet lands in the same order of magnitude as the
//! paper's LeNet row. The *relative* monolithic-vs-OOC gap comes from
//! [`MONOLITHIC_LUT_OVERHEAD_PCT`] and friends, which model the global
//! fanout buffering, control replication and conservative BRAM inference
//! vendor synthesis exhibits on large designs (§V-C of the paper).

/// Logic (LUTs) accompanying each DSP MAC lane tap in a convolution engine:
/// operand muxing, partial-sum handling, its share of the adder tree.
pub const CONV_LUT_PER_DSP: u64 = 120;

/// Logic per DSP in the folded fully-connected engine (more reuse, less
/// routing logic per MAC).
pub const FC_LUT_PER_DSP: u64 = 120;

/// Slices in a memory controller (address generators, burst logic,
/// FIFO control) — Fig. 5's interface block.
pub const MEMCTRL_SLICES: u64 = 190;
/// DSPs used by a memory controller's address arithmetic.
pub const MEMCTRL_DSPS: u64 = 2;
/// BRAMs in a memory controller's FIFO queues.
pub const MEMCTRL_FIFO_BRAMS: u64 = 4;

/// Bits per block RAM.
pub const BRAM_BITS: u64 = 36 * 1024;

/// Extra slice fraction (percent) the monolithic flow pays: replicated
/// control, fanout buffering the global optimizer inserts.
pub const MONOLITHIC_LUT_OVERHEAD_PCT: u64 = 9;
/// Extra BRAM fraction (percent) from conservative monolithic BRAM
/// inference.
pub const MONOLITHIC_BRAM_OVERHEAD_PCT: u64 = 6;
/// Extra register fraction (percent) from monolithic fanout pipelining.
pub const MONOLITHIC_FF_OVERHEAD_PCT: u64 = 12;

/// Frame-cycle budget each engine is sized for: lanes are provisioned so a
/// layer streams one frame in roughly this many cycles, balancing the
/// pipeline (every streaming accelerator generator does this; it is also
/// what keeps VGG-16's total DSP demand in the Table II band).
pub const TARGET_FRAME_CYCLES: u64 = 8_000_000;

/// Output-channel lanes instantiated per convolution engine, proportional
/// to the layer's MAC load: heavy layers get wide arrays, light layers fold
/// onto a single k×k lane.
pub fn conv_lanes(macs: u64, taps: u64) -> u64 {
    macs.div_ceil(taps.max(1) * TARGET_FRAME_CYCLES)
        .clamp(1, 40)
}

/// DSP MACs in the folded fully-connected engine, MAC-load proportional
/// with a minimum that keeps the accumulator tree busy.
pub fn fc_dsps(macs: u64) -> u64 {
    macs.div_ceil(TARGET_FRAME_CYCLES).clamp(4, 128)
}

/// Channel lanes in a pooling engine.
pub fn pool_lanes(in_channels: u32) -> u64 {
    u64::from(in_channels).div_ceil(4).clamp(1, 16)
}

/// BRAMs needed to hold `bits` of storage.
pub fn brams_for_bits(bits: u64) -> u64 {
    bits.div_ceil(BRAM_BITS)
}

/// Longest unregistered chain the generators allow. Deeper trees get
/// pipeline registers inserted — the paper's own fix ("inserting pipeline
/// elements such as FFs on the critical path improves the timing
/// performance, while increasing the overall latency").
pub const MAX_COMB_CHAIN: usize = 3;

/// Combinational chain length of an adder/comparator tree reducing `taps`
/// operands: the tree has `ceil(log2(taps))` levels, the generators
/// register every second level, and chains longer than [`MAX_COMB_CHAIN`]
/// are pipelined. This single rule is what makes deep-input layers slower
/// (the paper's conv2-vs-conv1 and VGG-component observations).
pub fn comb_chain_len(taps: u64) -> usize {
    (ceil_log2(taps).div_ceil(2))
        .max(1)
        .min(MAX_COMB_CHAIN as u64) as usize
}

/// Ceiling log2 (0 and 1 map to 0).
pub fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - u64::from((x - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_rules_balance_the_pipeline() {
        // LeNet conv1 (118k MACs) folds onto one 5x5 lane.
        assert_eq!(conv_lanes(117_600, 25), 1);
        // A heavy VGG conv (1.85G MACs, 3x3) gets a wide array.
        let heavy = conv_lanes(1_850_000_000, 9);
        assert!((20..=40).contains(&heavy), "lanes = {heavy}");
        // Lanes scale down with lighter layers.
        assert!(conv_lanes(462_000_000, 9) < heavy);
        assert_eq!(fc_dsps(48_000), 4);
        assert_eq!(fc_dsps(102_000_000), 13);
        assert_eq!(pool_lanes(6), 2);
        assert_eq!(pool_lanes(512), 16);
    }

    #[test]
    fn bram_sizing() {
        assert_eq!(brams_for_bits(0), 0);
        assert_eq!(brams_for_bits(1), 1);
        assert_eq!(brams_for_bits(BRAM_BITS), 1);
        assert_eq!(brams_for_bits(BRAM_BITS + 1), 2);
    }

    #[test]
    fn comb_chain_grows_logarithmically() {
        // A 2x2 pooling window -> shallow chain.
        let shallow = comb_chain_len(4);
        // VGG conv5: 9 taps * 512 channels -> deeper (pipelined-capped).
        let deep = comb_chain_len(9 * 512);
        assert!(deep > shallow);
        assert_eq!(comb_chain_len(1), 1);
        // Deep trees are pipelined rather than left combinational.
        assert_eq!(comb_chain_len(u64::MAX), MAX_COMB_CHAIN);
    }
}
