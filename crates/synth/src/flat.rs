//! Monolithic network synthesis: the whole CNN as one flat module — the
//! input of the traditional baseline flow.

use crate::conv::emit_conv_engine;
use crate::fc::emit_fc_engine;
use crate::memctrl::{emit_memctrl, CtrlSide};
use crate::pool::{emit_pool_engine, emit_relu_stage};
use crate::{cost, SynthError, SynthMode, SynthOptions};
use pi_cnn::graph::{Granularity, Network};
use pi_cnn::layer::Layer;
use pi_netlist::{Cell, CellKind, Endpoint, Module, ModuleBuilder, Net, StreamRole};

/// Synthesize the whole network into one flat module.
///
/// In [`SynthMode::Monolithic`] the module additionally gets I/O buffers
/// (this is a top-level design, not OOC) and the documented global overhead:
/// replicated control and fanout-buffer slices plus conservatively inferred
/// BRAMs, sized as a percentage of the base design (see [`cost`]).
pub fn synth_network_flat(
    network: &Network,
    granularity: Granularity,
    opts: &SynthOptions,
) -> Result<Module, SynthError> {
    let comps = network.components(granularity)?;
    let shapes = network.input_shapes()?;
    let mut b = ModuleBuilder::new(format!("{}_flat", network.name));
    let clk = b.input("clk", StreamRole::Clock, 1);
    let din = b.input("din", StreamRole::Source, opts.data_width);
    let en = b.input("en", StreamRole::Control, 1);
    let dout = b.output("dout", StreamRole::Sink, opts.data_width);

    // Top-level designs get I/O buffers; OOC does not (the paper's OOC
    // motivation).
    let mut cursor: Endpoint = Endpoint::Port(din);
    let obuf = if opts.mode == SynthMode::Monolithic {
        let ibuf = b.cell(Cell::new("ibuf", CellKind::IoBuf));
        b.connect("ibuf_net", cursor, [Endpoint::Cell(ibuf)]);
        cursor = Endpoint::Cell(ibuf);
        Some(b.cell(Cell::new("obuf", CellKind::IoBuf)))
    } else {
        None
    };

    // Emit every component back to back, each with its interface
    // controllers, exactly as the streamed architecture schedules them.
    let mut first_ctrl: Option<Endpoint> = None;
    for (ci, comp) in comps.iter().enumerate() {
        let src = emit_memctrl(&mut b, &format!("c{ci}_src"), CtrlSide::Source, cursor);
        if ci == 0 {
            b.net(Net::new("en_net", Endpoint::Port(en), vec![src]));
            // Clock: lands on the first controller (HD.CLK_SRC analog for
            // the monolithic top, a real clock root either way).
            b.net(Net::new("clk_net", Endpoint::Port(clk), vec![src]).clock());
            first_ctrl = Some(src);
        }
        cursor = src;
        for (li, node_id) in comp.nodes.iter().enumerate() {
            let node = network.node(*node_id);
            let input_shape = shapes[node_id.index()];
            let prefix = format!("c{ci}_e{li}_{}", node.layer.kind_tag());
            cursor = match &node.layer {
                Layer::Conv(p) => emit_conv_engine(&mut b, &prefix, p, input_shape, opts, cursor),
                Layer::Pool(p) => emit_pool_engine(&mut b, &prefix, p, input_shape, opts, cursor),
                Layer::Relu => emit_relu_stage(&mut b, &prefix, input_shape, cursor),
                Layer::Fc(p) => emit_fc_engine(&mut b, &prefix, p, input_shape, opts, cursor),
                Layer::Input(_) => cursor,
                // The flat baseline threads components linearly; a join's
                // second operand arrives over the same stream (the monolithic
                // flow models resources and timing, not function).
                Layer::Eltwise(_) => {
                    crate::eltwise::emit_eltwise_stage(&mut b, &prefix, input_shape, cursor, cursor)
                }
            };
        }
        cursor = emit_memctrl(&mut b, &format!("c{ci}_snk"), CtrlSide::Sink, cursor);
    }

    // Monolithic overhead, sized from the base design.
    if opts.mode == SynthMode::Monolithic {
        let first_cell_after_input = first_ctrl.expect("networks have at least one component");
        let base = b.resources_so_far();
        let extra_lut_slices =
            (base.luts * cost::MONOLITHIC_LUT_OVERHEAD_PCT / 100).div_ceil(8) as usize;
        let extra_ff_slices =
            (base.ffs * cost::MONOLITHIC_FF_OVERHEAD_PCT / 100).div_ceil(16) as usize;
        let extra_brams = (base.brams * cost::MONOLITHIC_BRAM_OVERHEAD_PCT / 100) as usize;

        let add_overhead =
            |b: &mut ModuleBuilder, tag: &str, n: usize, kind: CellKind, feed: Endpoint| {
                let mut remaining = n;
                let mut g = 0usize;
                while remaining > 0 {
                    let len = remaining.min(16);
                    let chain = crate::emit::emit_chain(
                        b,
                        &format!("ovh_{tag}{g}"),
                        len,
                        |i| Cell::new(format!("ovh_{tag}{g}_{i}"), kind),
                        Some(feed),
                    );
                    // Tie the tail into the output path so the cells are live.
                    let tail = Endpoint::Cell(*chain.last().expect("len >= 1"));
                    b.connect(format!("ovh_{tag}{g}_out"), tail, [cursor]);
                    remaining -= len;
                    g += 1;
                }
            };
        // Fanout-buffer logic (LUT-heavy) and pipeline registers (FF-heavy).
        add_overhead(
            &mut b,
            "lut",
            extra_lut_slices,
            CellKind::Slice { luts: 8, ffs: 4 },
            first_cell_after_input,
        );
        add_overhead(
            &mut b,
            "ff",
            extra_ff_slices,
            CellKind::Slice { luts: 1, ffs: 16 },
            first_cell_after_input,
        );
        add_overhead(
            &mut b,
            "bram",
            extra_brams,
            CellKind::Bram,
            first_cell_after_input,
        );
    }

    // Output buffer (monolithic) or direct port connection (OOC).
    match obuf {
        Some(ob) => {
            b.connect("obuf_in", cursor, [Endpoint::Cell(ob)]);
            b.connect("dout_net", Endpoint::Cell(ob), [Endpoint::Port(dout)]);
        }
        None => {
            b.connect("dout_net", cursor, [Endpoint::Port(dout)]);
        }
    }

    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth_component;
    use pi_cnn::models;
    use pi_fabric::ResourceCount;

    #[test]
    fn monolithic_lenet_exceeds_ooc_component_sum() {
        let net = models::lenet5();
        let ooc = SynthOptions::lenet_like();
        let mono = SynthOptions::lenet_like().monolithic();
        let flat = synth_network_flat(&net, Granularity::Layer, &mono).unwrap();
        let comps = net.components(Granularity::Layer).unwrap();
        let sum: ResourceCount = comps
            .iter()
            .map(|c| synth_component(&net, c, &ooc).unwrap().resources())
            .sum();
        let fr = flat.resources();
        // The monolithic design pays the documented overhead: Table II's
        // "classic implementation uses more resources" observation.
        assert!(fr.luts > sum.luts, "mono {} <= ooc {}", fr.luts, sum.luts);
        assert!(fr.ffs > sum.ffs);
        assert!(fr.brams >= sum.brams);
        // And it has I/O buffers, which OOC must not have.
        assert_eq!(fr.ios, 2);
        assert_eq!(sum.ios, 0);
        // Overhead stays single-digit-percent scale, not a blowup.
        assert!(fr.luts < sum.luts * 13 / 10);
    }

    #[test]
    fn ooc_flat_has_no_iobufs() {
        let net = models::toy();
        let flat =
            synth_network_flat(&net, Granularity::Layer, &SynthOptions::lenet_like()).unwrap();
        assert_eq!(flat.resources().ios, 0);
    }

    #[test]
    fn flat_module_is_structurally_valid() {
        let net = models::lenet5();
        let flat = synth_network_flat(
            &net,
            Granularity::Layer,
            &SynthOptions::lenet_like().monolithic(),
        )
        .unwrap();
        assert!(flat.validate().is_ok());
        assert!(flat.cells().len() > 1000);
    }
}
