//! Component synthesis: one fused component → one OOC module with the
//! paper's standard interface (clock, source, sink, control).

use crate::conv::emit_conv_engine;
use crate::eltwise::emit_eltwise_stage;
use crate::fc::emit_fc_engine;
use crate::memctrl::{emit_memctrl, CtrlSide};
use crate::pool::{emit_pool_engine, emit_relu_stage};
use crate::{SynthError, SynthOptions};
use pi_cnn::graph::{Component, Network};
use pi_cnn::layer::Layer;
use pi_netlist::{Endpoint, Module, ModuleBuilder, Net, StreamRole};

/// Synthesize one component of a network into an OOC module.
///
/// Interface contract (paper §IV-B3): every component exposes
/// * `clk` — clock input,
/// * `din` — the *source* stream (fed by the upstream memory controller),
/// * `en`  — control input,
/// * `dout` — the *sink* stream.
///
/// Join components (leading layer is an element-wise add/mul) additionally
/// expose `din2`, the second operand stream, with its own source
/// controller — the stitcher routes the skip connection there.
///
/// Internally: source memory controller → the fused layer engines in
/// schedule order → sink controller.
pub fn synth_component(
    network: &Network,
    component: &Component,
    opts: &SynthOptions,
) -> Result<Module, SynthError> {
    let shapes = network.input_shapes()?;
    let mut b = ModuleBuilder::new(component.name.clone());
    let clk = b.input("clk", StreamRole::Clock, 1);
    let din = b.input("din", StreamRole::Source, opts.data_width);
    let en = b.input("en", StreamRole::Control, 1);
    let dout = b.output("dout", StreamRole::Sink, opts.data_width);
    // Joins never fuse into a producer, so an Eltwise node is always the
    // component's leading node.
    let is_join = component
        .nodes
        .first()
        .is_some_and(|id| network.node(*id).layer.is_join());
    let din2 = is_join.then(|| b.input("din2", StreamRole::Source, opts.data_width));

    // Source interface.
    let mut cursor = emit_memctrl(&mut b, "src", CtrlSide::Source, Endpoint::Port(din));
    let Endpoint::Cell(src_out_cell) = cursor else {
        unreachable!("memctrl returns a cell endpoint")
    };
    // Control enable terminates in the source controller.
    b.net(Net::new("en_net", Endpoint::Port(en), vec![cursor]));
    // Clock: partially routed to the first cell (HD.CLK_SRC analog).
    b.net(
        Net::new(
            "clk_net",
            Endpoint::Port(clk),
            vec![Endpoint::Cell(src_out_cell)],
        )
        .clock(),
    );

    // Layer engines in schedule order.
    for (idx, node_id) in component.nodes.iter().enumerate() {
        let node = network.node(*node_id);
        let input_shape = shapes[node_id.index()];
        let prefix = format!("e{idx}_{}", node.layer.kind_tag());
        cursor = match &node.layer {
            Layer::Conv(p) => emit_conv_engine(&mut b, &prefix, p, input_shape, opts, cursor),
            Layer::Pool(p) => emit_pool_engine(&mut b, &prefix, p, input_shape, opts, cursor),
            Layer::Relu => emit_relu_stage(&mut b, &prefix, input_shape, cursor),
            Layer::Fc(p) => emit_fc_engine(&mut b, &prefix, p, input_shape, opts, cursor),
            Layer::Input(_) => cursor,
            Layer::Eltwise(_) => {
                let din2 = din2.expect("join component declares din2");
                let src2 = emit_memctrl(
                    &mut b,
                    &format!("{prefix}_src2"),
                    CtrlSide::Source,
                    Endpoint::Port(din2),
                );
                emit_eltwise_stage(&mut b, &prefix, input_shape, cursor, src2)
            }
        };
    }

    // Sink interface.
    let snk = emit_memctrl(&mut b, "snk", CtrlSide::Sink, cursor);
    b.connect("dout_net", snk, [Endpoint::Port(dout)]);

    Ok(b.finish()?)
}

/// Analytic DSP count of a component's engines — the same sizing rules the
/// generators use, without building the netlist. The latency model divides
/// MACs by this number.
pub fn component_dsp_estimate(network: &Network, component: &Component) -> Result<u64, SynthError> {
    let shapes = network.input_shapes()?;
    let mut dsps = crate::cost::MEMCTRL_DSPS + 1; // source + sink controllers
    for node_id in &component.nodes {
        let node = network.node(*node_id);
        let input = shapes[node_id.index()];
        match &node.layer {
            Layer::Conv(p) => {
                let taps = u64::from(p.kernel) * u64::from(p.kernel);
                let macs = p.macs(input)?;
                dsps += crate::cost::conv_lanes(macs, taps) * taps;
            }
            Layer::Fc(p) => {
                dsps += crate::cost::fc_dsps(p.macs(input));
            }
            _ => {}
        }
    }
    Ok(dsps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::graph::Granularity;
    use pi_cnn::models;

    #[test]
    fn lenet_components_synthesize() {
        let net = models::lenet5();
        let opts = SynthOptions::lenet_like();
        let comps = net.components(Granularity::Layer).unwrap();
        assert_eq!(comps.len(), 6);
        let modules: Vec<Module> = comps
            .iter()
            .map(|c| synth_component(&net, c, &opts).unwrap())
            .collect();
        // conv components hold DSP arrays; pool components only the
        // controller's address DSPs.
        assert!(modules[0].resources().dsps >= 25);
        assert!(modules[1].resources().dsps <= 4);
        // Every component implements the interface contract.
        for m in &modules {
            assert!(m.port_by_name("clk").is_some());
            assert!(m.port_by_name("din").is_some());
            assert!(m.port_by_name("dout").is_some());
            assert!(m.port_by_name("en").is_some());
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn fused_component_contains_both_engines() {
        let net = models::lenet5();
        let opts = SynthOptions::lenet_like();
        let comps = net.components(Granularity::Layer).unwrap();
        // pool1+relu1
        let m = synth_component(&net, &comps[1], &opts).unwrap();
        assert!(m.cells().iter().any(|c| c.name.starts_with("e0_pool")));
        assert!(m.cells().iter().any(|c| c.name.starts_with("e1_relu")));
    }

    #[test]
    fn lenet_totals_are_in_calibration_band() {
        let net = models::lenet5();
        let opts = SynthOptions::lenet_like();
        let comps = net.components(Granularity::Layer).unwrap();
        let total: pi_fabric::ResourceCount = comps
            .iter()
            .map(|c| synth_component(&net, c, &opts).unwrap().resources())
            .sum();
        // Same order of magnitude as the paper's LeNet row of Table II.
        assert!((8_000..60_000).contains(&total.luts), "LUTs {}", total.luts);
        assert!((40..250).contains(&total.dsps), "DSPs {}", total.dsps);
        assert!((20..500).contains(&total.brams), "BRAMs {}", total.brams);
    }

    #[test]
    fn vgg_totals_match_table2_band() {
        let net = models::vgg16();
        let opts = SynthOptions::vgg_like();
        let comps = net.components(Granularity::Block).unwrap();
        let total: pi_fabric::ResourceCount = comps
            .iter()
            .map(|c| synth_component(&net, c, &opts).unwrap().resources())
            .sum();
        // Paper: ~261-283 k LUTs, ~2100 DSPs, 786-854 BRAM.
        assert!(
            (200_000..340_000).contains(&total.luts),
            "LUTs {}",
            total.luts
        );
        assert!((1_600..2_700).contains(&total.dsps), "DSPs {}", total.dsps);
        assert!((400..1_100).contains(&total.brams), "BRAMs {}", total.brams);
    }
}
