//! Element-wise join engine generator: the two-stream add/mul stage behind
//! ResNet-style skip connections. Each operand passes through a
//! synchronization register (the short stream must wait for the long one),
//! then per-lane ALU slices combine them and a merge stage re-serializes
//! the lanes.

use crate::cost;
use crate::emit::{emit_merge, out_slice, tree_slice};
use pi_cnn::layer::Shape;
use pi_netlist::{Cell, Endpoint, ModuleBuilder};

/// Emit an element-wise join stage combining operands `a` and `b`.
pub fn emit_eltwise_stage(
    builder: &mut ModuleBuilder,
    prefix: &str,
    input_shape: Shape,
    a: Endpoint,
    b: Endpoint,
) -> Endpoint {
    // Stream-alignment registers on both operands.
    let sync_a = builder.cell(Cell::new(format!("{prefix}_synca"), out_slice()));
    builder.connect(format!("{prefix}_ia"), a, [Endpoint::Cell(sync_a)]);
    let sync_b = builder.cell(Cell::new(format!("{prefix}_syncb"), out_slice()));
    builder.connect(format!("{prefix}_ib"), b, [Endpoint::Cell(sync_b)]);

    // Per-lane ALU slices, same lane count heuristic as the other
    // element-wise stage (ReLU).
    let lanes = cost::pool_lanes(input_shape.channels).min(4);
    let mut outs = Vec::with_capacity(lanes as usize);
    for l in 0..lanes {
        let c = builder.cell(Cell::new(format!("{prefix}_alu{l}"), tree_slice()));
        builder.connect(
            format!("{prefix}_a{l}"),
            Endpoint::Cell(sync_a),
            [Endpoint::Cell(c)],
        );
        builder.connect(
            format!("{prefix}_b{l}"),
            Endpoint::Cell(sync_b),
            [Endpoint::Cell(c)],
        );
        outs.push(Endpoint::Cell(c));
    }
    emit_merge(builder, &format!("{prefix}_join"), &outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::StreamRole;

    #[test]
    fn eltwise_stage_is_small_and_valid() {
        let mut b = ModuleBuilder::new("elt");
        let da = b.input("da", StreamRole::Source, 16);
        let db = b.input("db", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let out = emit_eltwise_stage(
            &mut b,
            "e",
            Shape::new(16, 32, 32),
            Endpoint::Port(da),
            Endpoint::Port(db),
        );
        b.connect("o", out, [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        assert!(m.validate().is_ok());
        assert_eq!(m.resources().dsps, 0);
        assert_eq!(m.resources().brams, 0);
        assert!(m.resources().luts <= 128);
    }
}
