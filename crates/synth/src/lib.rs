//! Circuit generators — the synthesis front-end of the toolflow.
//!
//! Real flows synthesize HDL; here, parameterized generators elaborate each
//! CNN component (and the four motivation kernels) directly into site-level
//! netlists whose resource counts, connectivity locality and combinational
//! depths follow the same scaling laws as the RTL architectures the paper
//! describes:
//!
//! * **Convolution** (§IV-A, Fig. 4a): line buffers feeding a window shift
//!   register, a systolic array of DSP MACs per output-channel lane, an
//!   adder tree whose combinational depth grows with `log2(k²·C_in)`, and a
//!   requantizing output stage.
//! * **Max-pool** (Fig. 4c): per-channel comparator trees behind a shift
//!   register and a small controller.
//! * **ReLU**: a thin element-wise stage that fuses into its producer.
//! * **Fully-connected**: implemented as a convolution with kernel = input
//!   size (exactly the paper's choice), folded onto a smaller MAC array.
//! * **Memory controller** (Fig. 5): address generation + FIFO queues at
//!   every component boundary that needs re-tiling.
//!
//! Two synthesis modes reproduce the paper's observed resource behaviour:
//! OOC component synthesis is area-optimized by pblock pressure, while
//! monolithic synthesis pays a documented overhead (global control
//! replication, fanout buffering, conservative BRAM inference) and inserts
//! I/O buffers — see [`cost`] for the constants.

pub mod cle;
pub mod component;
pub mod conv;
pub mod cost;
pub mod eltwise;
pub mod emit;
pub mod fc;
pub mod flat;
pub mod kernels;
pub mod memctrl;
pub mod pool;

pub use component::synth_component;
pub use flat::synth_network_flat;
pub use kernels::{synth_kernel, KernelKind};

use serde::{Deserialize, Serialize};

/// Synthesis mode: the axis Table II's comparison varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthMode {
    /// Out-of-context component synthesis: no I/O buffers, area-optimized
    /// under pblock pressure.
    Ooc,
    /// Traditional full-design synthesis: I/O buffers inserted, global
    /// overhead applied.
    Monolithic,
}

/// Options threaded through every generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthOptions {
    pub mode: SynthMode,
    /// Datapath width in bits (the paper evaluates fixed-16).
    pub data_width: u16,
    /// Store weights in on-chip ROM (the paper's LeNet choice) instead of
    /// streaming them from off-chip (its VGG choice).
    pub weights_on_chip: bool,
}

impl SynthOptions {
    /// The paper's LeNet configuration.
    pub fn lenet_like() -> Self {
        SynthOptions {
            mode: SynthMode::Ooc,
            data_width: 16,
            weights_on_chip: true,
        }
    }

    /// The paper's VGG configuration.
    pub fn vgg_like() -> Self {
        SynthOptions {
            mode: SynthMode::Ooc,
            data_width: 16,
            weights_on_chip: false,
        }
    }

    pub fn monolithic(mut self) -> Self {
        self.mode = SynthMode::Monolithic;
        self
    }
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            mode: SynthMode::Ooc,
            data_width: 16,
            weights_on_chip: true,
        }
    }
}

/// Errors from the generators.
#[derive(Debug)]
pub enum SynthError {
    /// Underlying CNN graph problem.
    Cnn(pi_cnn::CnnError),
    /// Netlist construction failed (a generator bug).
    Netlist(pi_netlist::NetlistError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Cnn(e) => write!(f, "synthesis: {e}"),
            SynthError::Netlist(e) => write!(f, "synthesis netlist: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<pi_cnn::CnnError> for SynthError {
    fn from(e: pi_cnn::CnnError) -> Self {
        SynthError::Cnn(e)
    }
}

impl From<pi_netlist::NetlistError> for SynthError {
    fn from(e: pi_netlist::NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}
