//! Human-readable reports: utilization tables, timing summaries and the
//! ASCII floorplan that reproduces the paper's Fig. 8 (the chip with
//! labelled component pblocks).

use crate::power::PowerReport;
use crate::timing::TimingReport;
use pi_fabric::{Device, ResourceCount};
use pi_netlist::Design;

/// Render a design's component floorplan as an ASCII sketch of the device,
/// one letter per instance (paper Fig. 8). `width` is the sketch width in
/// characters; height follows the device aspect ratio.
pub fn floorplan_sketch(design: &Design, device: &Device, width: usize) -> String {
    let width = width.clamp(16, 200);
    let height = (width as f64 * f64::from(device.rows()) / f64::from(device.cols()) / 2.2)
        .round()
        .max(8.0) as usize;
    let mut grid = vec![vec!['.'; width]; height];

    // Mark I/O columns (fabric discontinuities).
    for col in 0..device.cols() {
        if device
            .column_kind(col)
            .map(|k| k.is_discontinuity())
            .unwrap_or(false)
        {
            let x = (usize::from(col) * width) / usize::from(device.cols());
            for row in grid.iter_mut() {
                row[x.min(width - 1)] = '|';
            }
        }
    }

    // Paint every instance's pblock with its letter.
    let letters: Vec<char> = ('A'..='Z').chain('a'..='z').collect();
    let mut legend = String::new();
    for (i, inst) in design.instances().iter().enumerate() {
        let Some(pb) = inst.module.pblock else {
            continue;
        };
        let ch = letters[i % letters.len()];
        let x0 = (usize::from(pb.col_lo) * width) / usize::from(device.cols());
        let x1 = (usize::from(pb.col_hi) * width) / usize::from(device.cols());
        // Screen rows run top-down; device rows bottom-up.
        let y0 = height - 1 - (usize::from(pb.row_hi) * height) / usize::from(device.rows());
        let y1 = height - 1 - (usize::from(pb.row_lo) * height) / usize::from(device.rows());
        for row in grid.iter_mut().take(y1.min(height - 1) + 1).skip(y0) {
            for cell in row.iter_mut().take(x1.min(width - 1) + 1).skip(x0) {
                *cell = ch;
            }
        }
        legend.push_str(&format!(
            "  {ch} = {} ({}x{} @ X{}Y{})\n",
            inst.name,
            pb.width(),
            pb.height(),
            pb.col_lo,
            pb.row_lo
        ));
    }

    let mut out = String::with_capacity(height * (width + 1) + legend.len());
    for row in &grid {
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&legend);
    out
}

/// Render a resource utilization table against a device's capacity.
pub fn utilization_table(used: &ResourceCount, device: &Device) -> String {
    let totals = device.totals();
    let pct = used.percent_of(&totals);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>8}\n",
        "resource", "used", "available", "util"
    ));
    for (name, u, t, p) in [
        ("LUTs", used.luts, totals.luts, pct.luts),
        ("FFs", used.ffs, totals.ffs, pct.ffs),
        ("BRAMs", used.brams, totals.brams, pct.brams),
        ("DSPs", used.dsps, totals.dsps, pct.dsps),
        ("URAMs", used.urams, totals.urams, pct.urams),
        ("IOs", used.ios, totals.ios, pct.ios),
    ] {
        out.push_str(&format!("{name:<10} {u:>10} {t:>12} {p:>7.2}%\n"));
    }
    out
}

/// Render a timing summary including the worst path.
pub fn timing_summary(timing: &TimingReport) -> String {
    let mut out = format!(
        "Fmax {:.1} MHz (critical path {:.0} ps over {} nodes / {} edges)\n",
        timing.fmax_mhz, timing.critical_path_ps, timing.nodes, timing.edges
    );
    if !timing.worst_path.is_empty() {
        out.push_str("worst path: ");
        out.push_str(&timing.worst_path.join(" -> "));
        out.push('\n');
    }
    for p in &timing.top_paths {
        out.push_str(&format!(
            "  {:>8.0} ps  slack {:>8.0} ps  {} (via {})\n",
            p.path_ps, p.slack_ps, p.endpoint, p.through
        ));
    }
    out
}

/// Render a routing summary: net counts, wirelength, the router's work
/// metric (A* expansions) and the optimization counters (Steiner segments,
/// criticality-driven re-routes, parallel-merge conflicts).
pub fn routing_summary(stats: &crate::route::RouteStats) -> String {
    let mut out = format!(
        "routing: {} nets ({} trivial), wirelength {}, {} iterations, {} expansions\n",
        stats.routed_nets, stats.trivial_nets, stats.wirelength, stats.iterations, stats.expansions
    );
    out.push_str(&format!(
        "  steiner segments {}, criticality re-routes {}, merge conflicts {}\n",
        stats.steiner_segments, stats.criticality_reroutes, stats.parallel_conflicts
    ));
    if stats.overused_tiles > 0 {
        out.push_str(&format!(
            "  WARNING: {} tiles remain overused\n",
            stats.overused_tiles
        ));
    }
    out
}

/// Render a power summary.
pub fn power_summary(power: &PowerReport) -> String {
    format!(
        "power: {:.0} mW total ({:.0} mW dynamic + {:.0} mW static)\n",
        power.total_mw(),
        power.dynamic_mw,
        power.static_mw
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_fabric::Pblock;
    use pi_netlist::{Cell, CellKind, DesignKind, Endpoint, ModuleBuilder, StreamRole};

    fn two_instance_design(device: &Device) -> Design {
        let mut design = Design::new("d", device.name(), DesignKind::Assembled);
        for (i, (pb_col, pb_row)) in [(1u16, 0u16), (66, 224)].iter().enumerate() {
            let mut b = ModuleBuilder::new(format!("m{i}"));
            let din = b.input("din", StreamRole::Source, 8);
            let dout = b.output("dout", StreamRole::Sink, 8);
            let c = b.cell(Cell::new("c", CellKind::full_slice()));
            b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
            b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
            let mut m = b.finish().expect("builds");
            m.pblock = Some(Pblock::new(*pb_col, pb_col + 31, *pb_row, pb_row + 63));
            design.add_instance(format!("inst{i}"), m);
        }
        design
    }

    #[test]
    fn floorplan_contains_all_instances_and_legend() {
        let device = Device::xcku5p_like();
        let design = two_instance_design(&device);
        let sketch = floorplan_sketch(&design, &device, 64);
        assert!(sketch.contains('A'));
        assert!(sketch.contains('B'));
        assert!(sketch.contains("A = inst0"));
        assert!(sketch.contains("B = inst1"));
        // The I/O columns show as separators.
        assert!(sketch.contains('|'));
    }

    #[test]
    fn floorplan_respects_vertical_orientation() {
        // inst0 sits at the device bottom => it must appear on a LOWER
        // screen line than inst1 (which sits higher on the chip).
        let device = Device::xcku5p_like();
        let design = two_instance_design(&device);
        let sketch = floorplan_sketch(&design, &device, 64);
        let first_a = sketch
            .lines()
            .position(|l| l.contains('A'))
            .expect("A drawn");
        let first_b = sketch
            .lines()
            .position(|l| l.contains('B'))
            .expect("B drawn");
        assert!(first_b < first_a, "B (higher rows) must render above A");
    }

    #[test]
    fn utilization_table_lists_all_classes() {
        let device = Device::test_part();
        let used = ResourceCount {
            luts: 100,
            ffs: 50,
            brams: 2,
            dsps: 1,
            urams: 0,
            ios: 0,
        };
        let t = utilization_table(&used, &device);
        for label in ["LUTs", "FFs", "BRAMs", "DSPs", "URAMs", "IOs"] {
            assert!(t.contains(label), "missing {label}");
        }
        assert!(t.contains("100"));
    }

    #[test]
    fn summaries_render() {
        let timing = TimingReport {
            critical_path_ps: 2000.0,
            fmax_mhz: 500.0,
            worst_path: vec!["a".into(), "b".into()],
            top_paths: Vec::new(),
            nodes: 10,
            edges: 9,
        };
        let s = timing_summary(&timing);
        assert!(s.contains("500.0 MHz"));
        assert!(s.contains("a -> b"));
        let p = crate::power::estimate(
            &ResourceCount {
                luts: 1000,
                ..ResourceCount::ZERO
            },
            100,
            300.0,
        );
        assert!(power_summary(&p).contains("mW"));
        let stats = crate::route::RouteStats {
            routed_nets: 12,
            trivial_nets: 2,
            wirelength: 340,
            overused_tiles: 1,
            iterations: 3,
            expansions: 9000,
            steiner_segments: 7,
            criticality_reroutes: 4,
            parallel_conflicts: 1,
        };
        let r = routing_summary(&stats);
        assert!(r.contains("12 nets"));
        assert!(r.contains("steiner segments 7"));
        assert!(r.contains("criticality re-routes 4"));
        assert!(r.contains("merge conflicts 1"));
        assert!(r.contains("WARNING: 1 tiles"));
    }
}
