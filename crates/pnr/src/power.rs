//! Power estimation: a standard activity + capacitance model.
//!
//! Dynamic power scales with the switched capacitance — logic resources
//! weighted by their toggle energy plus total routed wirelength — times the
//! clock frequency. Static power scales with the resources in use. The
//! absolute numbers are model outputs; what the experiments use is the
//! *relative* comparison (fewer resources and shorter wires at the same
//! function → less power, the paper's §V-C claim).

use pi_fabric::ResourceCount;

/// Energy weights, microwatts per MHz per unit.
const UW_PER_MHZ_LUT: f64 = 0.9;
const UW_PER_MHZ_FF: f64 = 0.35;
const UW_PER_MHZ_BRAM: f64 = 26.0;
const UW_PER_MHZ_DSP: f64 = 18.0;
const UW_PER_MHZ_URAM: f64 = 40.0;
const UW_PER_MHZ_WIRE_TILE: f64 = 0.05;

/// Static leakage, milliwatts per unit.
const STATIC_MW_PER_KLUT: f64 = 1.3;
const STATIC_MW_BASE: f64 = 320.0;

/// A power estimate in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    pub dynamic_mw: f64,
    pub static_mw: f64,
}

impl PowerReport {
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }
}

/// Estimate power for a design with the given resources, total routed
/// wirelength (tiles) and clock frequency.
pub fn estimate(resources: &ResourceCount, wirelength_tiles: u64, clock_mhz: f64) -> PowerReport {
    let per_mhz_uw = resources.luts as f64 * UW_PER_MHZ_LUT
        + resources.ffs as f64 * UW_PER_MHZ_FF
        + resources.brams as f64 * UW_PER_MHZ_BRAM
        + resources.dsps as f64 * UW_PER_MHZ_DSP
        + resources.urams as f64 * UW_PER_MHZ_URAM
        + wirelength_tiles as f64 * UW_PER_MHZ_WIRE_TILE;
    PowerReport {
        dynamic_mw: per_mhz_uw * clock_mhz / 1000.0,
        static_mw: STATIC_MW_BASE + resources.luts as f64 / 1000.0 * STATIC_MW_PER_KLUT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(luts: u64, brams: u64, dsps: u64) -> ResourceCount {
        ResourceCount {
            luts,
            ffs: luts,
            brams,
            dsps,
            urams: 0,
            ios: 0,
        }
    }

    #[test]
    fn more_resources_more_power() {
        let small = estimate(&r(10_000, 50, 100), 10_000, 300.0);
        let big = estimate(&r(280_000, 800, 2100), 500_000, 300.0);
        assert!(big.total_mw() > small.total_mw());
        assert!(big.dynamic_mw > small.dynamic_mw);
    }

    #[test]
    fn power_scales_with_clock_and_wirelength() {
        let base = estimate(&r(10_000, 50, 100), 10_000, 200.0);
        let fast = estimate(&r(10_000, 50, 100), 10_000, 400.0);
        assert!((fast.dynamic_mw / base.dynamic_mw - 2.0).abs() < 1e-9);
        let wired = estimate(&r(10_000, 50, 100), 100_000, 200.0);
        assert!(wired.dynamic_mw > base.dynamic_mw);
        // Static power is frequency independent.
        assert_eq!(base.static_mw, fast.static_mw);
    }
}
