//! Static timing analysis.
//!
//! The timing graph has one node per cell plus one transparent node per
//! module port (ports model partition pins: they anchor wires but add no
//! logic). Paths launch at registered cells (clock-to-q), accumulate wire
//! and combinational-cell delays, and capture at the next registered cell
//! (setup). The longest such path sets Fmax.
//!
//! For OOC modules, input ports with no fanin launch with a standard
//! interface allowance — the assumption HD.CLK_SRC-style OOC analysis makes
//! about the not-yet-present upstream register.

use crate::delay;
use crate::route::CongestionMap;
use crate::PnrError;
use pi_fabric::{Device, TileCoord};
use pi_netlist::{Design, Endpoint, Module};

/// Launch allowance for paths entering an OOC module boundary, picoseconds.
const IO_LAUNCH_PS: f64 = 150.0;

/// Slack is reported against a 5 %-tightened target clock
/// (`critical_path_ps * 0.95`), not the achieved period. Against the
/// achieved period the worst path would always read exactly zero slack and
/// no net would ever be "critical"; tightening the target makes the whole
/// near-critical cone read negative, giving downstream consumers — the
/// router's criticality ordering, lint's PL0141 — a non-empty critical
/// set to act on.
const CRIT_TARGET_RATIO: f64 = 0.95;

/// The result of a timing run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst register-to-register (or boundary-to-register) path, ps.
    pub critical_path_ps: f64,
    /// 1 / critical path.
    pub fmax_mhz: f64,
    /// Names along the worst path, launch to capture.
    pub worst_path: Vec<String>,
    /// The worst `K` capture events, most critical first (standard
    /// multi-path timing report; the worst entry equals the critical path).
    pub top_paths: Vec<PathSummary>,
    /// Nodes in the analyzed graph.
    pub nodes: usize,
    /// Timing edges in the analyzed graph.
    pub edges: usize,
}

/// One entry of the multi-path report.
#[derive(Debug, Clone)]
pub struct PathSummary {
    /// Total path delay, ps.
    pub path_ps: f64,
    /// Slack against the critical path (0 for the worst path).
    pub slack_ps: f64,
    /// Name of the capturing element.
    pub endpoint: String,
    /// Name of the element driving the final hop.
    pub through: String,
}

/// How many capture events the multi-path report keeps.
const TOP_PATHS: usize = 8;

#[derive(Clone)]
struct TNode {
    name: String,
    /// Combinational propagation delay (applies to unregistered nodes).
    comb_delay_ps: f64,
    registered: bool,
    clk2q_ps: f64,
    coord: Option<TileCoord>,
}

struct TGraph {
    nodes: Vec<TNode>,
    /// (source node, sink node, pipeline stages the wire is broken into)
    edges: Vec<(u32, u32, u32)>,
}

impl TGraph {
    fn new() -> Self {
        TGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn add_module(&mut self, module: &Module, prefix: &str) -> (usize, usize) {
        let cell_base = self.nodes.len();
        for cell in module.cells() {
            self.nodes.push(TNode {
                name: format!("{prefix}{}", cell.name),
                comb_delay_ps: delay::comb_delay_ps(cell.delay_ps),
                registered: cell.registered,
                clk2q_ps: f64::from(delay::clk_to_q_ps(cell.kind)),
                coord: cell.placement,
            });
        }
        let port_base = self.nodes.len();
        for port in module.ports() {
            self.nodes.push(TNode {
                name: format!("{prefix}{}", port.name),
                comb_delay_ps: 0.0,
                registered: false, // transparent: a partition pin, not a register
                clk2q_ps: 0.0,
                coord: port.partpin,
            });
        }
        for net in module.nets() {
            if net.is_clock {
                continue;
            }
            let to_node = |e: Endpoint| -> u32 {
                match e {
                    Endpoint::Cell(c) => (cell_base + c.index()) as u32,
                    Endpoint::Port(p) => (port_base + p.index()) as u32,
                }
            };
            let src = to_node(net.source);
            for &sink in &net.sinks {
                self.edges.push((src, to_node(sink), 1));
            }
        }
        (cell_base, port_base)
    }
}

/// Wire delay of one timing edge.
fn edge_wire_ps(
    device: &Device,
    a: Option<TileCoord>,
    b: Option<TileCoord>,
    congestion: Option<&CongestionMap>,
    stages: u32,
) -> f64 {
    let raw = match (a, b) {
        (Some(a), Some(b)) => {
            let cong = congestion.map(|m| m.span_fraction(a, b)).unwrap_or(0.0);
            delay::wire_delay_ps(device, a, b, cong)
        }
        // One endpoint not physically located (e.g. unplanned port): charge
        // only the base wire.
        _ => delay::WIRE_BASE_PS,
    };
    if stages <= 1 {
        raw
    } else {
        // A pipelined wire is `stages` register-to-register segments; the
        // worst segment carries its share of the wire plus a register hop.
        raw / f64::from(stages) + f64::from(delay::SETUP_PS) + 100.0
    }
}

fn analyze(
    graph: &TGraph,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<TimingReport, PnrError> {
    analyze_full(graph, device, congestion).map(|(report, _)| report)
}

/// Forward arrival pass (Kahn) plus backward required-time pass. Returns
/// the report and the per-node *output* slack against the tightened target
/// clock (see [`CRIT_TARGET_RATIO`]): `required_out - arrival`, `+inf` for
/// unconstrained nodes. The node index space matches [`TGraph::nodes`].
fn analyze_full(
    graph: &TGraph,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<(TimingReport, Vec<f64>), PnrError> {
    let n = graph.nodes.len();
    // Adjacency.
    let mut out_edges: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut fanin_count = vec![0u32; n];
    let mut has_fanout = vec![false; n];
    for &(s, t, stages) in &graph.edges {
        let wire = edge_wire_ps(
            device,
            graph.nodes[s as usize].coord,
            graph.nodes[t as usize].coord,
            congestion,
            stages,
        );
        out_edges[s as usize].push((t, wire));
        has_fanout[s as usize] = true;
        if !graph.nodes[t as usize].registered {
            fanin_count[t as usize] += 1;
        }
    }

    // Arrival at a node's *output*: for registered nodes this is clk2q; for
    // combinational nodes it accumulates. Combinational nodes with no fanin
    // launch with the OOC interface allowance.
    let mut arrival: Vec<f64> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            if node.registered {
                node.clk2q_ps
            } else if fanin_count[i] == 0 {
                IO_LAUNCH_PS + node.comb_delay_ps
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect();
    let mut pred: Vec<u32> = vec![u32::MAX; n];

    // Kahn's algorithm over combinational sinks.
    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            let node = &graph.nodes[i as usize];
            node.registered || fanin_count[i as usize] == 0
        })
        .collect();
    let mut remaining = vec![0u32; n];
    remaining.copy_from_slice(&fanin_count);
    let mut processed = 0usize;
    let total_comb = (0..n)
        .filter(|&i| !graph.nodes[i].registered && fanin_count[i] > 0)
        .count();

    let mut critical = 0.0f64;
    let mut critical_end = u32::MAX;
    // (path ps, capture node, driver node) for the multi-path report. One
    // slot per *endpoint*: a register captures many paths but reports its
    // worst.
    let mut worst_at: std::collections::HashMap<u32, (f64, u32)> = std::collections::HashMap::new();
    // Pop order is a valid topological order of every processed node
    // (a node only becomes ready once all its fanins have been popped);
    // reversed, it drives the backward required-time pass.
    let mut pop_order: Vec<u32> = Vec::with_capacity(n);

    while let Some(node) = ready.pop() {
        pop_order.push(node);
        let i = node as usize;
        let out_arr = arrival[i];
        for &(t, wire) in &out_edges[i] {
            let ti = t as usize;
            let sink = &graph.nodes[ti];
            let at_input = out_arr + wire;
            if sink.registered {
                // Path captures here.
                let path = at_input + f64::from(delay::SETUP_PS);
                let slot = worst_at.entry(t).or_insert((f64::NEG_INFINITY, u32::MAX));
                if path > slot.0 {
                    *slot = (path, node);
                }
                if path > critical {
                    critical = path;
                    critical_end = t;
                    pred[ti] = node;
                }
            } else {
                let through = at_input + sink.comb_delay_ps;
                if through > arrival[ti] {
                    arrival[ti] = through;
                    pred[ti] = node;
                }
                remaining[ti] -= 1;
                if remaining[ti] == 0 {
                    processed += 1;
                    ready.push(t);
                }
            }
        }
        // Combinational endpoints with no fanout also capture (module
        // outputs): charge setup at the boundary.
        if !graph.nodes[i].registered && !has_fanout[i] {
            let path = out_arr + f64::from(delay::SETUP_PS);
            let slot = worst_at
                .entry(node)
                .or_insert((f64::NEG_INFINITY, u32::MAX));
            if path > slot.0 {
                *slot = (path, pred[i]);
            }
            if path > critical {
                critical = path;
                critical_end = node;
            }
        }
    }

    if processed < total_comb {
        // Some combinational node never became ready: a cycle.
        let stuck = (0..n)
            .find(|&i| !graph.nodes[i].registered && remaining[i] > 0 && fanin_count[i] > 0)
            .map(|i| graph.nodes[i].name.clone())
            .unwrap_or_else(|| "<unknown>".to_string());
        return Err(PnrError::CombinationalLoop(stuck));
    }

    // Reconstruct the worst path.
    let mut worst_path = Vec::new();
    let mut cur = critical_end;
    let mut guard = 0;
    while cur != u32::MAX && guard < 64 {
        worst_path.push(graph.nodes[cur as usize].name.clone());
        cur = pred[cur as usize];
        guard += 1;
    }
    worst_path.reverse();

    // Multi-path report: the worst TOP_PATHS endpoints.
    let mut events: Vec<(f64, u32, u32)> = worst_at
        .into_iter()
        .map(|(end, (ps, via))| (ps, end, via))
        .collect();
    events.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    events.truncate(TOP_PATHS);

    // Floors: even an empty design runs at the clock network's limit.
    let critical = critical.max(500.0);

    // Backward required-time pass against the tightened target clock.
    // Reverse pop order guarantees a combinational sink's requirement is
    // final before any of its fanins is visited; registered sinks need no
    // requirement of their own (capture is `target - setup` directly).
    let target = critical * CRIT_TARGET_RATIO;
    let setup = f64::from(delay::SETUP_PS);
    let mut required: Vec<f64> = vec![f64::INFINITY; n];
    for &node in pop_order.iter().rev() {
        let i = node as usize;
        let mut req = f64::INFINITY;
        for &(t, wire) in &out_edges[i] {
            let ti = t as usize;
            let cand = if graph.nodes[ti].registered {
                target - setup - wire
            } else {
                required[ti] - graph.nodes[ti].comb_delay_ps - wire
            };
            req = req.min(cand);
        }
        if !graph.nodes[i].registered && !has_fanout[i] {
            req = req.min(target - setup);
        }
        required[i] = req;
    }
    let slacks: Vec<f64> = (0..n)
        .map(|i| {
            if arrival[i] == f64::NEG_INFINITY || required[i] == f64::INFINITY {
                f64::INFINITY
            } else {
                required[i] - arrival[i]
            }
        })
        .collect();

    let top_paths = events
        .into_iter()
        .map(|(ps, end, via)| PathSummary {
            path_ps: ps,
            slack_ps: critical - ps,
            endpoint: graph.nodes[end as usize].name.clone(),
            through: if via == u32::MAX {
                "<boundary>".to_string()
            } else {
                graph.nodes[via as usize].name.clone()
            },
        })
        .collect();
    Ok((
        TimingReport {
            critical_path_ps: critical,
            fmax_mhz: 1.0e6 / critical,
            worst_path,
            top_paths,
            nodes: n,
            edges: graph.edges.len(),
        },
        slacks,
    ))
}

/// Worst output slack across a net's endpoints (`+inf` for clock nets —
/// the clock network is not a routed resource here).
fn net_slack(
    node_slacks: &[f64],
    cell_base: usize,
    port_base: usize,
    net: &pi_netlist::Net,
) -> f64 {
    if net.is_clock {
        return f64::INFINITY;
    }
    let node = |e: Endpoint| -> usize {
        match e {
            Endpoint::Cell(c) => cell_base + c.index(),
            Endpoint::Port(p) => port_base + p.index(),
        }
    };
    let mut s = node_slacks[node(net.source)];
    for &sink in &net.sinks {
        s = s.min(node_slacks[node(sink)]);
    }
    s
}

/// Per-net slack for a module's nets, in net index order, against the
/// tightened target clock (second return value, ps). Negative slack marks
/// the near-critical cone (see [`CRIT_TARGET_RATIO`]); clock nets report
/// `+inf`. This is the router's slack-ordering feed — it needs only
/// placements, not routes, so it is valid mid-negotiation.
pub fn net_slacks_module(
    module: &Module,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<(Vec<f64>, f64), PnrError> {
    let mut g = TGraph::new();
    let (cell_base, port_base) = g.add_module(module, "");
    let (report, node_slacks) = analyze_full(&g, device, congestion)?;
    let target = report.critical_path_ps * CRIT_TARGET_RATIO;
    let slacks = module
        .nets()
        .iter()
        .map(|net| net_slack(&node_slacks, cell_base, port_base, net))
        .collect();
    Ok((slacks, target))
}

/// Per-instance net slacks (outer index = instance, inner = net),
/// top-level net slacks, and the target clock period (ps).
pub type DesignSlacks = (Vec<Vec<f64>>, Vec<f64>, f64);

/// [`net_slacks_module`] for an assembled design: see [`DesignSlacks`]
/// for the return shape.
pub fn net_slacks_design(
    design: &Design,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<DesignSlacks, PnrError> {
    let mut g = TGraph::new();
    let mut bases = Vec::with_capacity(design.instances().len());
    for inst in design.instances() {
        bases.push(g.add_module(&inst.module, &format!("{}/", inst.name)));
    }
    for tnet in design.top_nets() {
        let (si, sp) = tnet.source;
        let src = (bases[si.index()].1 + sp.index()) as u32;
        for &(ti, tp) in &tnet.sinks {
            let dst = (bases[ti.index()].1 + tp.index()) as u32;
            g.edges.push((src, dst, tnet.pipeline_stages.max(1)));
        }
    }
    let (report, node_slacks) = analyze_full(&g, device, congestion)?;
    let target = report.critical_path_ps * CRIT_TARGET_RATIO;
    let inst_slacks = design
        .instances()
        .iter()
        .zip(&bases)
        .map(|(inst, &(cb, pb))| {
            inst.module
                .nets()
                .iter()
                .map(|net| net_slack(&node_slacks, cb, pb, net))
                .collect()
        })
        .collect();
    let top_slacks = design
        .top_nets()
        .iter()
        .map(|tnet| {
            let (si, sp) = tnet.source;
            let mut s = node_slacks[bases[si.index()].1 + sp.index()];
            for &(ti, tp) in &tnet.sinks {
                s = s.min(node_slacks[bases[ti.index()].1 + tp.index()]);
            }
            s
        })
        .collect();
    Ok((inst_slacks, top_slacks, target))
}

/// STA over a single module (OOC component analysis).
pub fn sta_module(
    module: &Module,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<TimingReport, PnrError> {
    let mut g = TGraph::new();
    g.add_module(module, "");
    analyze(&g, device, congestion)
}

/// STA over an assembled design: all instances plus the inter-component
/// nets. Inter-component hops go driver cell → output partition pin →
/// input partition pin → sink cell, which is exactly where badly planned
/// ports hurt (the paper's port-planning discussion).
pub fn sta_design(
    design: &Design,
    device: &Device,
    congestion: Option<&CongestionMap>,
) -> Result<TimingReport, PnrError> {
    let mut g = TGraph::new();
    let mut port_bases = Vec::with_capacity(design.instances().len());
    for inst in design.instances() {
        let (_, port_base) = g.add_module(&inst.module, &format!("{}/", inst.name));
        port_bases.push(port_base);
    }
    for tnet in design.top_nets() {
        let (si, sp) = tnet.source;
        let src = (port_bases[si.index()] + sp.index()) as u32;
        for &(ti, tp) in &tnet.sinks {
            let dst = (port_bases[ti.index()] + tp.index()) as u32;
            g.edges.push((src, dst, tnet.pipeline_stages.max(1)));
        }
    }
    analyze(&g, device, congestion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::{Cell, CellKind, ModuleBuilder, StreamRole};

    /// reg -> comb -> comb -> reg, placed with unit spacing.
    fn pipeline(comb_delay: u32, spacing: u16) -> Module {
        let mut b = ModuleBuilder::new("p");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let a = b.cell(Cell::new("a", CellKind::full_slice()));
        let c1 = b.cell(
            Cell::new("c1", CellKind::full_slice())
                .combinational()
                .with_delay_ps(comb_delay),
        );
        let c2 = b.cell(
            Cell::new("c2", CellKind::full_slice())
                .combinational()
                .with_delay_ps(comb_delay),
        );
        let z = b.cell(Cell::new("z", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect("n1", Endpoint::Cell(a), [Endpoint::Cell(c1)]);
        b.connect("n2", Endpoint::Cell(c1), [Endpoint::Cell(c2)]);
        b.connect("n3", Endpoint::Cell(c2), [Endpoint::Cell(z)]);
        b.connect("o", Endpoint::Cell(z), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        for (i, id) in [a, c1, c2, z].into_iter().enumerate() {
            m.set_placement(id, TileCoord::new(1 + (i as u16) * spacing, 1))
                .unwrap();
        }
        m
    }

    #[test]
    fn critical_path_matches_hand_computation() {
        let device = Device::test_part();
        let m = pipeline(250, 1);
        let r = sta_module(&m, &device, None).unwrap();
        // launch a (100) + 3 hops of wire (120+32) + c1 (250) + c2 (250)
        // + setup (60)
        let expected = 100.0 + 3.0 * 152.0 + 500.0 + 60.0;
        assert!(
            (r.critical_path_ps - expected).abs() < 1e-6,
            "got {} want {}",
            r.critical_path_ps,
            expected
        );
        assert!((r.fmax_mhz - 1.0e6 / expected).abs() < 1e-6);
    }

    #[test]
    fn stretching_wires_lowers_fmax() {
        let device = Device::test_part();
        let tight = sta_module(&pipeline(250, 1), &device, None).unwrap();
        let loose = sta_module(&pipeline(250, 8), &device, None).unwrap();
        assert!(loose.fmax_mhz < tight.fmax_mhz);
    }

    #[test]
    fn top_paths_are_sorted_and_anchored_at_the_critical_path() {
        let device = Device::test_part();
        let r = sta_module(&pipeline(250, 1), &device, None).unwrap();
        assert!(!r.top_paths.is_empty());
        // Worst entry matches the critical path with zero slack.
        assert!((r.top_paths[0].path_ps - r.critical_path_ps).abs() < 1e-9);
        assert!(r.top_paths[0].slack_ps.abs() < 1e-9);
        // Sorted by decreasing path delay, one entry per endpoint.
        for w in r.top_paths.windows(2) {
            assert!(w[0].path_ps >= w[1].path_ps);
        }
        let mut endpoints: Vec<&str> = r.top_paths.iter().map(|p| p.endpoint.as_str()).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert_eq!(endpoints.len(), r.top_paths.len());
    }

    #[test]
    fn worst_path_is_reported() {
        let device = Device::test_part();
        let r = sta_module(&pipeline(250, 1), &device, None).unwrap();
        assert!(r.worst_path.len() >= 3);
        assert!(r.worst_path.iter().any(|n| n == "c2" || n == "c1"));
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut b = ModuleBuilder::new("loop");
        let din = b.input("din", StreamRole::Source, 1);
        let dout = b.output("dout", StreamRole::Sink, 1);
        let a = b.cell(Cell::new("a", CellKind::full_slice()).combinational());
        let c = b.cell(Cell::new("c", CellKind::full_slice()).combinational());
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect("f", Endpoint::Cell(a), [Endpoint::Cell(c)]);
        b.connect("g", Endpoint::Cell(c), [Endpoint::Cell(a)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        m.set_placement(pi_netlist::CellId(0), TileCoord::new(1, 1))
            .unwrap();
        m.set_placement(pi_netlist::CellId(1), TileCoord::new(1, 2))
            .unwrap();
        let device = Device::test_part();
        match sta_module(&m, &device, None) {
            Err(PnrError::CombinationalLoop(_)) => {}
            other => panic!("expected loop error, got {other:?}"),
        }
    }

    #[test]
    fn design_sta_crosses_component_boundaries() {
        let device = Device::test_part();
        // Two single-cell modules linked by a top net between partpins.
        let make = |name: &str, col: u16, pp: TileCoord| {
            let mut b = ModuleBuilder::new(name);
            let din = b.input("din", StreamRole::Source, 16);
            let dout = b.output("dout", StreamRole::Sink, 16);
            let c = b.cell(Cell::new("c", CellKind::full_slice()));
            b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
            b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
            let mut m = b.finish().unwrap();
            m.set_placement(pi_netlist::CellId(0), TileCoord::new(col, 1))
                .unwrap();
            m.ports_mut().unwrap()[din.index()].partpin = Some(pp);
            m.ports_mut().unwrap()[dout.index()].partpin = Some(pp);
            m
        };
        let mut d = Design::new("d", "test-part", pi_netlist::DesignKind::Assembled);
        let a = d.add_instance("a", make("a", 1, TileCoord::new(2, 1)));
        let bb = d.add_instance("b", make("b", 10, TileCoord::new(9, 1)));
        let (pa, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (pb, _) = d.instance(bb).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, pa), vec![(bb, pb)], 16).unwrap();
        let near = sta_design(&d, &device, None).unwrap();

        // Move b's partpin far away: the boundary wire lengthens, Fmax drops.
        let mut d2 = d.clone();
        d2.instances_mut()[1].module.ports_mut().unwrap()[pb.index()].partpin =
            Some(TileCoord::new(30, 18));
        let far = sta_design(&d2, &device, None).unwrap();
        assert!(far.fmax_mhz < near.fmax_mhz);
    }

    #[test]
    fn pipelined_top_nets_shorten_the_worst_hop() {
        let device = Device::test_part();
        let make = |name: &str, col: u16, pp: TileCoord| {
            let mut b = ModuleBuilder::new(name);
            let din = b.input("din", StreamRole::Source, 16);
            let dout = b.output("dout", StreamRole::Sink, 16);
            let c = b.cell(Cell::new("c", CellKind::full_slice()));
            b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
            b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
            let mut m = b.finish().unwrap();
            m.set_placement(pi_netlist::CellId(0), TileCoord::new(col, 1))
                .unwrap();
            m.ports_mut().unwrap()[din.index()].partpin = Some(pp);
            m.ports_mut().unwrap()[dout.index()].partpin = Some(pp);
            m
        };
        let mut d = Design::new("d", "test-part", pi_netlist::DesignKind::Assembled);
        let a = d.add_instance("a", make("a", 1, TileCoord::new(1, 1)));
        let bb = d.add_instance("b", make("b", 30, TileCoord::new(30, 38)));
        let (pa, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (pb, _) = d.instance(bb).module.port_by_name("din").unwrap();
        d.connect_top("long", (a, pa), vec![(bb, pb)], 16).unwrap();
        let raw = sta_design(&d, &device, None).unwrap();
        d.top_nets_mut()[0].pipeline_stages = 4;
        let piped = sta_design(&d, &device, None).unwrap();
        assert!(
            piped.fmax_mhz > raw.fmax_mhz * 1.5,
            "pipelining gained too little: {} -> {}",
            raw.fmax_mhz,
            piped.fmax_mhz
        );
    }

    #[test]
    fn congestion_lowers_fmax() {
        // Same placed module, timed with and without a saturated congestion
        // map around its wires.
        let device = Device::test_part();
        let m = pipeline(250, 2);
        let clean = sta_module(&m, &device, None).unwrap();
        // Build a saturated congestion map by routing a module through the
        // same area with capacity 1 and seeding heavy occupancy.
        let mut routed = m.clone();
        let (_, map) = crate::route::route_module(
            &mut routed,
            &device,
            &crate::route::RouteOptions {
                max_iters: 1,
                capacity: 1,
                ..crate::route::RouteOptions::default()
            },
        )
        .unwrap();
        let congested = sta_module(&m, &device, Some(&map)).unwrap();
        assert!(congested.fmax_mhz <= clean.fmax_mhz);
    }

    #[test]
    fn net_slacks_mark_the_critical_cone_negative() {
        let device = Device::test_part();
        let m = pipeline(250, 1);
        let (slacks, target) = net_slacks_module(&m, &device, None).unwrap();
        assert_eq!(slacks.len(), m.nets().len());
        let report = sta_module(&m, &device, None).unwrap();
        assert!((target - report.critical_path_ps * CRIT_TARGET_RATIO).abs() < 1e-9);
        // The critical chain runs through every data net, so against the
        // tightened target the worst nets must read negative.
        let worst = slacks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(worst < 0.0, "no negative slack in {slacks:?}");
        // Worst slack equals target minus the achieved critical path.
        assert!(
            (worst - (target - report.critical_path_ps)).abs() < 1e-6,
            "worst {worst} vs target {target} critical {}",
            report.critical_path_ps
        );
        // Every slack is finite or +inf, never NaN.
        assert!(slacks.iter().all(|s| !s.is_nan()));
    }

    #[test]
    fn design_net_slacks_cover_instances_and_top_nets() {
        let device = Device::test_part();
        let make = |name: &str, col: u16, pp: TileCoord| {
            let mut b = ModuleBuilder::new(name);
            let din = b.input("din", StreamRole::Source, 16);
            let dout = b.output("dout", StreamRole::Sink, 16);
            let c = b.cell(Cell::new("c", CellKind::full_slice()));
            b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
            b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
            let mut m = b.finish().unwrap();
            m.set_placement(pi_netlist::CellId(0), TileCoord::new(col, 1))
                .unwrap();
            m.ports_mut().unwrap()[din.index()].partpin = Some(pp);
            m.ports_mut().unwrap()[dout.index()].partpin = Some(pp);
            m
        };
        let mut d = Design::new("d", "test-part", pi_netlist::DesignKind::Assembled);
        let a = d.add_instance("a", make("a", 1, TileCoord::new(2, 1)));
        let bb = d.add_instance("b", make("b", 10, TileCoord::new(9, 1)));
        let (pa, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (pb, _) = d.instance(bb).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, pa), vec![(bb, pb)], 16).unwrap();
        let (inst_slacks, top_slacks, target) = net_slacks_design(&d, &device, None).unwrap();
        assert_eq!(inst_slacks.len(), 2);
        for (inst, slacks) in d.instances().iter().zip(&inst_slacks) {
            assert_eq!(slacks.len(), inst.module.nets().len());
        }
        assert_eq!(top_slacks.len(), 1);
        assert!(target > 0.0);
        let worst = inst_slacks
            .iter()
            .flatten()
            .chain(top_slacks.iter())
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(worst < 0.0, "tightened target must leave a critical cone");
    }

    #[test]
    fn empty_design_hits_clock_floor() {
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("e");
        let din = b.input("din", StreamRole::Source, 1);
        let dout = b.output("dout", StreamRole::Sink, 1);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        let r = sta_module(&m, &device, None).unwrap();
        assert!(r.fmax_mhz <= 2000.0);
    }
}
