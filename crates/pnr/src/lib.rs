//! The implementation backend — the stand-in for Vivado's
//! `opt_design` / `place_design` / `phys_opt_design` / `route_design`.
//!
//! * [`place`] — seeded simulated-annealing placement with pblock
//!   constraints, range-limited moves and timing-weighted wirelength cost.
//!   Out-of-context modules placed in tight pblocks converge to short wires;
//!   monolithic designs spread over the chip do not — the mechanism behind
//!   the paper's "vendor tools achieve better QoR on small modules".
//! * [`route`] — PathFinder-style negotiated-congestion routing on a
//!   tile-level routing-resource graph: Steiner-decomposed multi-terminal
//!   nets, STA-slack-ordered rip-up, and net-level parallel waves with a
//!   deterministic merge, plus an incremental mode that only touches
//!   unrouted nets (locked pre-implemented modules keep their internal
//!   routing — the paper's key productivity lever).
//! * [`timing`] — static timing analysis over the placed/routed design;
//!   produces Fmax and critical-path reports.
//! * [`power`] — an activity/wirelength-based power estimate.
//! * [`compile`] — the phased flow with per-phase wall-clock timing; those
//!   measured times *are* the productivity numbers of Fig. 1a and Fig. 6.

pub mod compile;
pub mod delay;
pub mod place;
pub mod power;
pub mod report;
pub mod route;
pub mod timing;

pub use compile::{
    compile_flat, compile_flat_obs, route_assembled, route_assembled_obs, CompileOptions,
    CompileReport, PhaseTimes,
};
pub use place::{
    place_design_instances, place_design_instances_obs, place_module, place_module_obs,
    PlaceOptions, PlaceStats,
};
pub use route::{
    criticality_order, route_design, route_design_obs, route_module, route_module_obs,
    steiner_topology, RouteOptions, RouteStats,
};
pub use timing::{net_slacks_design, net_slacks_module, sta_design, sta_module, TimingReport};

/// Errors from the backend.
#[derive(Debug)]
pub enum PnrError {
    /// Not enough sites of a kind within the placement region.
    Unplaceable {
        kind: &'static str,
        needed: usize,
        available: usize,
    },
    /// A cell or port endpoint had no physical location when one was
    /// required.
    Unplaced(String),
    /// The router could not resolve congestion within its iteration budget.
    RoutingCongested { overused_tiles: usize },
    /// The timing graph has a combinational cycle.
    CombinationalLoop(String),
    /// Underlying netlist error.
    Netlist(pi_netlist::NetlistError),
    /// Underlying fabric error.
    Fabric(pi_fabric::FabricError),
}

impl std::fmt::Display for PnrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnrError::Unplaceable {
                kind,
                needed,
                available,
            } => write!(
                f,
                "placement region offers {available} {kind} sites, design needs {needed}"
            ),
            PnrError::Unplaced(what) => write!(f, "missing physical location: {what}"),
            PnrError::RoutingCongested { overused_tiles } => {
                write!(f, "routing left {overused_tiles} tiles overused")
            }
            PnrError::CombinationalLoop(m) => write!(f, "combinational loop through {m}"),
            PnrError::Netlist(e) => write!(f, "netlist: {e}"),
            PnrError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for PnrError {}

impl From<pi_netlist::NetlistError> for PnrError {
    fn from(e: pi_netlist::NetlistError) -> Self {
        PnrError::Netlist(e)
    }
}

impl From<pi_fabric::FabricError> for PnrError {
    fn from(e: pi_fabric::FabricError) -> Self {
        PnrError::Fabric(e)
    }
}
