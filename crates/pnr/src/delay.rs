//! The delay model: every picosecond the STA adds comes from here.
//!
//! Calibration intent: a well-placed component (chain neighbours 1–3 tiles
//! apart) lands in the 450–650 MHz band of the paper's Table III; a
//! stretched monolithic placement (5–15 tiles per hop, plus discontinuity
//! and congestion penalties) drops into the 200–375 MHz band.

use pi_fabric::{Device, TileCoord};
use pi_netlist::CellKind;

/// Clock-to-output delay of a registered cell, picoseconds. Hard blocks are
/// slower than fabric flip-flops, matching real UltraScale datasheet
/// ordering.
pub fn clk_to_q_ps(kind: CellKind) -> u32 {
    match kind {
        CellKind::Slice { .. } => 100,
        CellKind::Dsp => 450,
        CellKind::Bram => 650,
        CellKind::Uram => 750,
        CellKind::IoBuf => 500,
    }
}

/// Setup time at a registered cell input, picoseconds.
pub const SETUP_PS: u32 = 60;

/// Fixed component of every tile-to-tile wire, picoseconds.
pub const WIRE_BASE_PS: f64 = 120.0;

/// Incremental wire delay per tile of effective distance, picoseconds.
pub const WIRE_PER_TILE_PS: f64 = 32.0;

/// Extra delay per unit of local routing congestion (fraction of capacity
/// in use above the comfortable threshold), picoseconds.
pub const CONGESTION_PS: f64 = 220.0;

/// Congestion fraction below which no penalty applies.
pub const CONGESTION_FREE_FRACTION: f64 = 0.6;

/// Wire delay between two placed endpoints, picoseconds. Uses the device's
/// effective wiring distance, which already charges fabric-discontinuity
/// crossings; `congestion` is the local channel-utilization fraction (0–1+)
/// around the wire's span. Clock skew between the endpoints' clock regions
/// is charged here too — a register-to-register hop across regions loses
/// that margin.
pub fn wire_delay_ps(device: &Device, a: TileCoord, b: TileCoord, congestion: f64) -> f64 {
    let dist = device.wire_distance(a, b);
    let cong = (congestion - CONGESTION_FREE_FRACTION).max(0.0);
    WIRE_BASE_PS
        + WIRE_PER_TILE_PS * dist
        + CONGESTION_PS * cong
        + pi_fabric::clock::skew_ps(device, a, b)
}

/// Combinational propagation delay through a cell, picoseconds. Registered
/// cells terminate paths, so this only applies to combinational cells; the
/// generators set `delay_ps` per function and this clamps it into the model.
pub fn comb_delay_ps(delay_ps: u32) -> f64 {
    f64::from(delay_ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_fabric::Device;

    #[test]
    fn clk_to_q_ordering() {
        let slice = clk_to_q_ps(CellKind::Slice { luts: 8, ffs: 16 });
        assert!(slice < clk_to_q_ps(CellKind::Dsp));
        assert!(clk_to_q_ps(CellKind::Dsp) < clk_to_q_ps(CellKind::Bram));
    }

    #[test]
    fn wire_delay_grows_with_distance_and_congestion() {
        let d = Device::test_part();
        let a = TileCoord::new(1, 1);
        let near = TileCoord::new(2, 1);
        let far = TileCoord::new(10, 10);
        assert!(wire_delay_ps(&d, a, near, 0.0) < wire_delay_ps(&d, a, far, 0.0));
        assert!(wire_delay_ps(&d, a, far, 0.9) > wire_delay_ps(&d, a, far, 0.0));
        // Below the free threshold congestion costs nothing.
        assert_eq!(
            wire_delay_ps(&d, a, far, 0.5),
            wire_delay_ps(&d, a, far, 0.0)
        );
    }

    #[test]
    fn well_placed_component_band() {
        // A 4-hop combinational path with adjacent placement should land
        // near 2 ns (≈500 MHz): source clk2q + 4 wires + 3 comb slices +
        // setup.
        let d = Device::test_part();
        let a = TileCoord::new(1, 1);
        let b = TileCoord::new(1, 2);
        let hop = wire_delay_ps(&d, a, b, 0.0);
        let path = f64::from(clk_to_q_ps(CellKind::Dsp))
            + 4.0 * hop
            + 3.0 * comb_delay_ps(250)
            + f64::from(SETUP_PS);
        let fmax = 1.0e6 / path;
        assert!((400.0..700.0).contains(&fmax), "fmax = {fmax:.0} MHz");
    }
}
