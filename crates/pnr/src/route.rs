//! PathFinder-style negotiated-congestion routing on a tile-level
//! routing-resource graph.
//!
//! Every tile boundary offers [`RouteOptions::capacity`] wires. A first
//! pass routes each net with A* (multi-sink nets grow a Steiner-ish tree,
//! one A* per sink). Overused tiles then get history costs, the nets through
//! them are ripped up and rerouted, and the loop repeats — the classic
//! negotiation. The **incremental mode** is the flow's productivity lever:
//! locked routes seed the occupancy map and are never touched, so an
//! assembled design only pays for its inter-component nets.

use crate::PnrError;
use pi_fabric::{Device, TileCoord, TileKind};
use pi_netlist::{Design, Endpoint, Module, Route};
use pi_obs::Obs;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Routing options.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Negotiation iterations before giving up on congestion.
    pub max_iters: usize,
    /// Wires available per tile.
    pub capacity: u16,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iters: 8,
            // Wires per tile. Sized so a chip-filling monolithic design
            // (~26 average occupancy) negotiates to legality with headroom.
            capacity: 64,
        }
    }
}

/// Statistics from a routing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteStats {
    /// Nets actually routed in this run (locked nets are not counted).
    pub routed_nets: usize,
    /// Nets with fewer than two located endpoints (trivially routed).
    pub trivial_nets: usize,
    /// Total tiles occupied by the routes created in this run.
    pub wirelength: u64,
    /// Tiles still over capacity after negotiation (0 = fully legal).
    pub overused_tiles: usize,
    /// Negotiation iterations used.
    pub iterations: usize,
}

/// Post-routing channel-occupancy map, consumed by the timing model's
/// congestion term and by the component placer's congestion estimate.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    cols: u16,
    rows: u16,
    capacity: u16,
    occ: Vec<u16>,
}

impl CongestionMap {
    fn idx(&self, at: TileCoord) -> usize {
        debug_assert!(at.col < self.cols && at.row < self.rows);
        at.col as usize * self.rows as usize + at.row as usize
    }

    /// Fraction of capacity in use at a tile (can exceed 1.0 while
    /// negotiation is incomplete).
    pub fn fraction_at(&self, at: TileCoord) -> f64 {
        f64::from(self.occ[self.idx(at)]) / f64::from(self.capacity)
    }

    /// Mean occupancy fraction over the bounding box of two endpoints —
    /// the local congestion a wire between them experiences.
    pub fn span_fraction(&self, a: TileCoord, b: TileCoord) -> f64 {
        let (c0, c1) = (a.col.min(b.col), a.col.max(b.col));
        let (r0, r1) = (a.row.min(b.row), a.row.max(b.row));
        let mut sum = 0u64;
        let mut n = 0u64;
        for c in c0..=c1 {
            for r in r0..=r1 {
                sum += u64::from(self.occ[c as usize * self.rows as usize + r as usize]);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64 / f64::from(self.capacity)
        }
    }

    /// Tiles over capacity.
    pub fn overused(&self) -> usize {
        self.occ.iter().filter(|&&o| o > self.capacity).count()
    }
}

struct Grid {
    cols: u16,
    rows: u16,
    occ: Vec<u16>,
    hist: Vec<f32>,
    /// Per-tile base cost: 1 for fabric, higher for discontinuities.
    base: Vec<f32>,
    // A* scratch, generation-stamped to avoid clearing.
    gen: Vec<u32>,
    gscore: Vec<f32>,
    came: Vec<u32>,
    generation: u32,
    /// Open-set heap, kept here so one allocation serves the thousands of
    /// A* calls a routing run makes (cleared, not dropped, between calls).
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Nodes popped off the open set across every A* call — the router's
    /// true work metric, reported per negotiation iteration.
    expansions: u64,
    /// A* invocations (one per net sink attempted).
    astar_calls: u64,
}

impl Grid {
    fn new(device: &Device) -> Grid {
        let cols = device.cols();
        let rows = device.rows();
        let n = cols as usize * rows as usize;
        let mut base = vec![1.0f32; n];
        for c in 0..cols {
            let kind = device.column_kind(c).expect("column in range");
            let extra = match kind {
                TileKind::Io => 3.0,
                TileKind::Gap => 1.0,
                _ => 0.0,
            };
            if extra > 0.0 {
                for r in 0..rows {
                    base[c as usize * rows as usize + r as usize] += extra;
                }
            }
        }
        Grid {
            cols,
            rows,
            occ: vec![0; n],
            hist: vec![0.0; n],
            base,
            gen: vec![0; n],
            gscore: vec![0.0; n],
            came: vec![u32::MAX; n],
            generation: 0,
            heap: BinaryHeap::new(),
            expansions: 0,
            astar_calls: 0,
        }
    }

    #[inline]
    fn idx(&self, at: TileCoord) -> usize {
        at.col as usize * self.rows as usize + at.row as usize
    }

    #[inline]
    fn coord(&self, idx: usize) -> TileCoord {
        TileCoord::new(
            (idx / self.rows as usize) as u16,
            (idx % self.rows as usize) as u16,
        )
    }

    fn node_cost(&self, idx: usize, capacity: u16) -> f32 {
        let occ = self.occ[idx];
        let over = if occ >= capacity {
            8.0 + 4.0 * f32::from(occ - capacity)
        } else {
            // Soft pressure keeps channels balanced before they overflow.
            f32::from(occ) / f32::from(capacity)
        };
        self.base[idx] + self.hist[idx] + over
    }

    /// A* from any of `sources` to `sink`, restricted to a bounding box.
    /// On success fills `path` with the tiles sink→source-tree (inclusive)
    /// and returns `true`; on failure returns `false` with `path` empty.
    /// Both the open heap and the path vector are reused allocations — the
    /// router's inner loop runs allocation-free after warm-up.
    fn astar(
        &mut self,
        sources: &[usize],
        sink: usize,
        bbox: (u16, u16, u16, u16),
        capacity: u16,
        path: &mut Vec<usize>,
    ) -> bool {
        path.clear();
        self.astar_calls += 1;
        self.generation += 1;
        let gen = self.generation;
        let sink_at = self.coord(sink);
        // Take the heap out so pushing/popping does not alias the borrows
        // of the scratch arrays below; returned (cleared) on every exit.
        let mut heap = std::mem::take(&mut self.heap);
        for &s in sources {
            self.gen[s] = gen;
            self.gscore[s] = 0.0;
            self.came[s] = u32::MAX;
            let h = self.coord(s).manhattan(&sink_at) as f32;
            heap.push(Reverse((to_key(h), s)));
        }
        let (c0, c1, r0, r1) = bbox;
        let mut found = false;
        while let Some(Reverse((_, node))) = heap.pop() {
            self.expansions += 1;
            if node == sink {
                // Reconstruct.
                path.push(node);
                let mut cur = node;
                while self.came[cur] != u32::MAX {
                    cur = self.came[cur] as usize;
                    path.push(cur);
                }
                found = true;
                break;
            }
            let at = self.coord(node);
            let g = self.gscore[node];
            let neighbours = [
                (at.col > c0).then(|| node - self.rows as usize),
                (at.col < c1).then(|| node + self.rows as usize),
                (at.row > r0).then(|| node - 1),
                (at.row < r1).then(|| node + 1),
            ];
            for n in neighbours.into_iter().flatten() {
                let ng = g + self.node_cost(n, capacity);
                if self.gen[n] != gen || ng < self.gscore[n] {
                    self.gen[n] = gen;
                    self.gscore[n] = ng;
                    self.came[n] = node as u32;
                    let h = self.coord(n).manhattan(&sink_at) as f32;
                    heap.push(Reverse((to_key(ng + h), n)));
                }
            }
        }
        heap.clear();
        self.heap = heap;
        found
    }
}

/// Order-preserving f32 → u64 key for the binary heap.
///
/// Invariant: for finite costs `a <= b`, `to_key(a) <= to_key(b)`. The
/// `max(0.0)` clamps negatives — and NaN, whose `max` is the other operand
/// — to zero; the ×1024 scale and the saturating `as` cast are both
/// monotone. Resolution is 1/1024: costs closer than that may tie, which
/// only reorders equal-key pops, never best-first order. Above
/// 2^24/1024 = 16384 the f32 mantissa step exceeds the quantization step,
/// so distinct f32 costs still map to distinct-or-ordered keys; history
/// costs (+1.5 per overused tile per iteration) therefore cannot break
/// heap order no matter how long negotiation runs, and saturation would
/// need costs near 1.8e16 — far beyond any run. Infinity saturates to
/// `u64::MAX`, i.e. sorts last, which is the right behaviour for an
/// unreachable-cost sentinel.
#[inline]
fn to_key(f: f32) -> u64 {
    (f.max(0.0) * 1024.0) as u64
}

/// One routable net: located endpoints (source first) and where to write
/// the result.
struct Task {
    endpoints: Vec<TileCoord>,
    slot: Slot,
}

enum Slot {
    Intra { inst: usize, net: usize },
    Top { net: usize },
}

/// The negotiation engine shared by module- and design-level entry points.
/// Emits one `pathfinder_iter` point per negotiation iteration when the
/// handle is enabled.
fn run(
    grid: &mut Grid,
    tasks: &mut [Task],
    opts: &RouteOptions,
    obs: &Obs,
) -> (Vec<Option<Route>>, RouteStats) {
    let mut stats = RouteStats::default();
    let mut routes: Vec<Option<Route>> = (0..tasks.len()).map(|_| None).collect();
    // Per-net scratch, reused across every net and iteration so the inner
    // loop allocates only for the `Route` it actually keeps.
    let mut tree: Vec<usize> = Vec::new();
    let mut sinks: Vec<TileCoord> = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    let pathfinder_span = obs.span_with("pathfinder", &[("tasks", tasks.len().into())]);

    // Margin grows with negotiation iterations so desperate nets may detour.
    for iter in 0..opts.max_iters.max(1) {
        stats.iterations = iter + 1;
        let exp_start = grid.expansions;
        let calls_start = grid.astar_calls;
        let margin = 6 + 6 * iter as i32;
        // Route everything that has no route yet.
        for (ti, task) in tasks.iter().enumerate() {
            if routes[ti].is_some() {
                continue;
            }
            if task.endpoints.len() < 2 {
                routes[ti] = Some(Route::default());
                stats.trivial_nets += 1;
                continue;
            }
            let bbox = bbox_of(&task.endpoints, margin, grid.cols, grid.rows);
            tree.clear();
            tree.push(grid.idx(task.endpoints[0]));
            let mut ok = true;
            sinks.clear();
            sinks.extend_from_slice(&task.endpoints[1..]);
            sinks.sort_by_key(|s| s.manhattan(&task.endpoints[0]));
            for &sink in &sinks {
                let sidx = grid.idx(sink);
                if tree.contains(&sidx) {
                    continue;
                }
                if grid.astar(&tree, sidx, bbox, opts.capacity, &mut path) {
                    // A* reconstructs sink→tree; append in reverse so the
                    // route tiles read as a forward (tree→sink) path.
                    for &p in path.iter().rev() {
                        if !tree.contains(&p) {
                            tree.push(p);
                            grid.occ[p] += 1;
                        }
                    }
                } else {
                    ok = false;
                    break;
                }
            }
            if ok {
                // The tile list mirrors `tree` (pushed in lockstep above).
                let tiles: Vec<TileCoord> = tree.iter().map(|&p| grid.coord(p)).collect();
                routes[ti] = Some(Route { tiles });
            } else {
                // Rip partial usage and retry next iteration with a wider box.
                for &t in &tree[1..] {
                    grid.occ[t] = grid.occ[t].saturating_sub(1);
                }
            }
        }

        // Negotiate: find overused tiles, rip up offenders, raise history.
        let overused: Vec<usize> = grid
            .occ
            .iter()
            .enumerate()
            .filter(|(_, &o)| o > opts.capacity)
            .map(|(i, _)| i)
            .collect();
        let done = overused.is_empty() && routes.iter().all(|r| r.is_some());
        for &t in &overused {
            grid.hist[t] += 1.5;
        }
        let overused_count = overused.len();
        let mut ripups = 0usize;
        if !done && iter + 1 < opts.max_iters {
            let over_set: std::collections::HashSet<usize> = overused.into_iter().collect();
            for (ti, route) in routes.iter_mut().enumerate() {
                let Some(r) = route else { continue };
                if r.tiles.is_empty() {
                    continue;
                }
                if r.tiles.iter().any(|&t| over_set.contains(&grid.idx(t))) {
                    for &t in &r.tiles[1..] {
                        let i = grid.idx(t);
                        grid.occ[i] = grid.occ[i].saturating_sub(1);
                    }
                    *route = None;
                    ripups += 1;
                    let _ = ti;
                }
            }
        }
        if obs.enabled() {
            obs.point(
                "pathfinder_iter",
                &[
                    ("iter", iter.into()),
                    ("overused", overused_count.into()),
                    ("ripups", ripups.into()),
                    ("expansions", (grid.expansions - exp_start).into()),
                    ("astar_calls", (grid.astar_calls - calls_start).into()),
                    (
                        "unrouted",
                        routes.iter().filter(|r| r.is_none()).count().into(),
                    ),
                    (
                        "hist_total",
                        grid.hist.iter().map(|&h| f64::from(h)).sum::<f64>().into(),
                    ),
                ],
            );
        }
        if done {
            break;
        }
    }
    pathfinder_span.end();

    stats.overused_tiles = grid.occ.iter().filter(|&&o| o > opts.capacity).count();
    stats.routed_nets = routes.iter().filter(|r| r.is_some()).count() - stats.trivial_nets;
    stats.wirelength = routes.iter().flatten().map(|r| r.tiles.len() as u64).sum();
    (routes, stats)
}

fn bbox_of(pts: &[TileCoord], margin: i32, cols: u16, rows: u16) -> (u16, u16, u16, u16) {
    let mut c0 = u16::MAX;
    let mut c1 = 0;
    let mut r0 = u16::MAX;
    let mut r1 = 0;
    for p in pts {
        c0 = c0.min(p.col);
        c1 = c1.max(p.col);
        r0 = r0.min(p.row);
        r1 = r1.max(p.row);
    }
    let lo = |v: u16| (i32::from(v) - margin).max(0) as u16;
    let hi = |v: u16, max: u16| ((i32::from(v) + margin) as u16).min(max - 1);
    (lo(c0), hi(c1, cols), lo(r0), hi(r1, rows))
}

/// Locate a module net's endpoints: placed cells and partition-pinned
/// ports. Unlocatable endpoints are skipped (ports awaiting partpin
/// planning).
fn module_net_endpoints(module: &Module, net: &pi_netlist::Net) -> Vec<TileCoord> {
    net.endpoints()
        .filter_map(|e| match e {
            Endpoint::Cell(c) => module.cells()[c.index()].placement,
            Endpoint::Port(p) => module.ports()[p.index()].partpin,
        })
        .collect()
}

/// Route all unrouted non-clock nets of one module. Returns stats plus the
/// resulting congestion map (used by congestion-aware timing).
pub fn route_module(
    module: &mut Module,
    device: &Device,
    opts: &RouteOptions,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    route_module_obs(module, device, opts, &Obs::null())
}

/// [`route_module`] with telemetry: one `pathfinder_iter` point per
/// negotiation iteration (overused tiles, rip-ups, history-cost growth)
/// under the `pnr::route` scope.
pub fn route_module_obs(
    module: &mut Module,
    device: &Device,
    opts: &RouteOptions,
    obs: &Obs,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    let obs = obs.scoped("pnr::route");
    let mut grid = Grid::new(device);
    // Seed occupancy with whatever is already routed (locked or not).
    let mut tasks = Vec::new();
    for (ni, net) in module.nets().iter().enumerate() {
        if net.is_clock {
            continue;
        }
        match &net.route {
            Some(r) => {
                for t in &r.tiles {
                    let i = grid.idx(*t);
                    grid.occ[i] += 1;
                }
            }
            None => tasks.push(Task {
                endpoints: module_net_endpoints(module, net),
                slot: Slot::Intra { inst: 0, net: ni },
            }),
        }
    }
    let (routes, stats) = run(&mut grid, &mut tasks, opts, &obs);
    let nets = module.nets_mut()?;
    for (task, route) in tasks.iter().zip(routes) {
        let Slot::Intra { net, .. } = task.slot else {
            unreachable!("module routing only creates intra slots")
        };
        nets[net].route = route;
    }
    let map = CongestionMap {
        cols: grid.cols,
        rows: grid.rows,
        capacity: opts.capacity,
        occ: grid.occ,
    };
    Ok((stats, map))
}

/// Route an assembled design: locked module routes seed the congestion map
/// and only unrouted nets (typically the inter-component ones) are routed.
/// Returns stats plus the final congestion map for timing.
pub fn route_design(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    route_design_obs(design, device, opts, &Obs::null())
}

/// [`route_design`] with telemetry (see [`route_module_obs`]).
pub fn route_design_obs(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
    obs: &Obs,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    let obs = obs.scoped("pnr::route");
    let mut grid = Grid::new(device);
    let mut tasks = Vec::new();
    for (ii, inst) in design.instances().iter().enumerate() {
        for (ni, net) in inst.module.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            match &net.route {
                Some(r) => {
                    for t in &r.tiles {
                        let i = grid.idx(*t);
                        grid.occ[i] += 1;
                    }
                }
                None => tasks.push(Task {
                    endpoints: module_net_endpoints(&inst.module, net),
                    slot: Slot::Intra { inst: ii, net: ni },
                }),
            }
        }
    }
    for (ni, tnet) in design.top_nets().iter().enumerate() {
        if let Some(route) = &tnet.route {
            for t in &route.tiles {
                let i = grid.idx(*t);
                grid.occ[i] += 1;
            }
            continue;
        }
        let endpoints: Vec<TileCoord> = tnet
            .endpoints()
            .filter_map(|ep| design.top_endpoint_coord(ep))
            .collect();
        tasks.push(Task {
            endpoints,
            slot: Slot::Top { net: ni },
        });
    }

    let (routes, stats) = run(&mut grid, &mut tasks, opts, &obs);
    for (task, route) in tasks.iter().zip(routes) {
        match task.slot {
            Slot::Intra { inst, net } => {
                // Instances may be locked (their unrouted nets should not
                // exist), so go through the unlocked path only.
                let m = &mut design.instances_mut()[inst].module;
                if !m.locked {
                    m.nets_mut()?[net].route = route;
                }
            }
            Slot::Top { net } => {
                design.top_nets_mut()[net].route = route;
            }
        }
    }
    let map = CongestionMap {
        cols: grid.cols,
        rows: grid.rows,
        capacity: opts.capacity,
        occ: grid.occ,
    };
    Ok((stats, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place_module, PlaceOptions};
    use pi_netlist::{Cell, CellKind, ModuleBuilder, StreamRole};

    fn placed_chain(n: usize, device: &Device, seed: u64) -> Module {
        let mut b = ModuleBuilder::new("chain");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let ids: Vec<_> = (0..n)
            .map(|i| b.cell(Cell::new(format!("s{i}"), CellKind::full_slice())))
            .collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(ids[0])]);
        for i in 1..n {
            b.connect(
                format!("n{i}"),
                Endpoint::Cell(ids[i - 1]),
                [Endpoint::Cell(ids[i])],
            );
        }
        b.connect("out", Endpoint::Cell(ids[n - 1]), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        place_module(
            &mut m,
            device,
            &PlaceOptions {
                seed,
                effort: 1.0,
                region: None,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn routes_all_nets() {
        let device = Device::test_part();
        let mut m = placed_chain(40, &device, 5);
        let (stats, _) = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        assert!(m.fully_routed());
        assert_eq!(stats.overused_tiles, 0);
        assert!(stats.wirelength > 0);
        // The port-connected nets are trivial (no partpins planned).
        assert_eq!(stats.trivial_nets, 2);
    }

    #[test]
    fn routes_form_connected_paths() {
        let device = Device::test_part();
        let mut m = placed_chain(10, &device, 7);
        let _ = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        for net in m.nets() {
            let Some(route) = &net.route else { continue };
            if route.tiles.len() < 2 {
                continue;
            }
            // Every consecutive pair of tiles is grid-adjacent or a tree
            // branch point (distance can jump when starting a new branch,
            // but for 2-pin chains it is a simple path).
            if net.degree() == 2 {
                for w in route.tiles.windows(2) {
                    assert!(w[0].manhattan(&w[1]) <= 1, "{:?}", w);
                }
            }
        }
    }

    #[test]
    fn locked_routes_are_untouched_and_seed_congestion() {
        let device = Device::test_part();
        let mut m = placed_chain(10, &device, 9);
        let _ = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        let saved: Vec<_> = m.nets().iter().map(|n| n.route.clone()).collect();
        m.lock();
        // Re-running the router on a locked module routes nothing new.
        let mut design = Design::new("d", "test-part", pi_netlist::DesignKind::Assembled);
        design.add_instance("a", m);
        let (stats, map) = route_design(&mut design, &device, &RouteOptions::default()).unwrap();
        assert_eq!(stats.routed_nets, 0);
        for (net, old) in design.instances()[0].module.nets().iter().zip(saved) {
            assert_eq!(net.route, old);
        }
        assert!(map.overused() == 0);
    }

    #[test]
    fn to_key_is_monotone_up_to_saturation() {
        // Heap order must survive costs far beyond the base-cost scale:
        // negotiation adds +1.5 history per overused tile per iteration,
        // and path costs accumulate over long detours.
        let samples: [f32; 11] = [
            0.0, 0.25, 0.5, 1.0, 7.5, 100.0, 1000.0, 16384.0, 1.0e6, 3.4e7, 1.0e10,
        ];
        for w in samples.windows(2) {
            assert!(
                to_key(w[0]) < to_key(w[1]),
                "to_key({}) = {} !< to_key({}) = {}",
                w[0],
                to_key(w[0]),
                w[1],
                to_key(w[1])
            );
        }
        // NaN and negatives clamp to zero instead of poisoning the heap.
        assert_eq!(to_key(f32::NAN), 0);
        assert_eq!(to_key(-3.0), 0);
        // Infinity saturates to the largest key (sorts last).
        assert_eq!(to_key(f32::INFINITY), u64::MAX);
        // Sub-resolution differences may tie but never invert.
        assert!(to_key(1.0) <= to_key(1.0 + 1.0 / 2048.0));
    }

    #[test]
    fn astar_detours_around_huge_history_costs() {
        // A wall of enormous history cost must still leave A* best-first:
        // the router funnels through the single cheap gap rather than
        // paying the wall (a broken key quantization would pop wall tiles
        // as if they were cheap).
        let device = Device::test_part();
        let mut grid = Grid::new(&device);
        let wall_col = 5u16;
        for r in 1..grid.rows {
            let i = grid.idx(TileCoord::new(wall_col, r));
            grid.hist[i] = 1.0e6;
        }
        let src = grid.idx(TileCoord::new(2, 3));
        let sink = grid.idx(TileCoord::new(8, 3));
        let bbox = (0, grid.cols - 1, 0, grid.rows - 1);
        let mut path = Vec::new();
        assert!(grid.astar(&[src], sink, bbox, 64, &mut path));
        let crossings: Vec<TileCoord> = path
            .iter()
            .map(|&p| grid.coord(p))
            .filter(|c| c.col == wall_col)
            .collect();
        assert_eq!(
            crossings,
            vec![TileCoord::new(wall_col, 0)],
            "path must cross the wall exactly once, through the gap"
        );
        // The reused path buffer serves a second query unchanged.
        assert!(grid.astar(&[src], sink, bbox, 64, &mut path));
        assert!(!path.is_empty());
    }

    #[test]
    fn congestion_negotiation_resolves_hotspots() {
        // Many parallel nets forced through a narrow region.
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("hot");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let n = 60;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..n {
            left.push(b.cell(Cell::new(format!("l{i}"), CellKind::full_slice())));
            right.push(b.cell(Cell::new(format!("r{i}"), CellKind::full_slice())));
        }
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(left[0])]);
        for i in 0..n {
            b.connect(
                format!("x{i}"),
                Endpoint::Cell(left[i]),
                [Endpoint::Cell(right[i])],
            );
        }
        b.connect("out", Endpoint::Cell(right[n - 1]), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        // Manually place: left column cluster and right column cluster.
        for (i, &id) in left.iter().enumerate() {
            m.set_placement(id, TileCoord::new(1, (i % 20) as u16)).ok();
        }
        for (i, &id) in right.iter().enumerate() {
            m.set_placement(id, TileCoord::new(24, (i % 20) as u16))
                .ok();
        }
        // Fill remaining placements for validity (cells may share tiles in
        // this synthetic stress test; the router only cares about coords).
        let opts = RouteOptions {
            max_iters: 10,
            capacity: 8,
        };
        let (stats, map) = route_module(&mut m, &device, &opts).unwrap();
        assert_eq!(stats.overused_tiles, 0, "negotiation failed");
        assert_eq!(map.overused(), 0);
    }
}
