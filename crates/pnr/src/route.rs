//! PathFinder-style negotiated-congestion routing on a tile-level
//! routing-resource graph.
//!
//! Every tile boundary offers [`RouteOptions::capacity`] wires. Each
//! negotiation iteration routes the still-unrouted nets **in parallel**
//! against a frozen snapshot of the congestion state, then merges the
//! proposed routes sequentially in a deterministic (criticality) order —
//! a proposal that lands on a tile the merge has already filled to
//! capacity is re-routed on the spot against the live state. Overused
//! tiles then get history costs, the nets through them are ripped up, and
//! the loop repeats — the classic negotiation, parallelized without
//! giving up byte-identical results at any `PI_THREADS`.
//!
//! Two quality levers ride on top of the negotiation
//! ([`RouteOptions::steiner`], [`RouteOptions::slack_order`]):
//!
//! * **Steiner decomposition** — multi-terminal nets are decomposed into a
//!   rectilinear Steiner topology ([`steiner_topology`]: Prim over the
//!   terminals plus greedy Hanan-point insertion) before any A* runs, so
//!   the router walks short two-pin segments with tight per-segment
//!   bounding boxes instead of one fan-out star over the whole net bbox.
//!   Already-routed tree tiles are zero-cost sources for every later
//!   segment.
//! * **Slack-aware ordering** — per-net STA slacks (see
//!   `timing::net_slacks_module`) are refreshed from the live congestion
//!   map every iteration; nets route most-negative-slack first
//!   ([`criticality_order`]) and the history/congestion share of
//!   [`Costs::node_cost`] is priced by criticality, so critical nets take
//!   direct paths and non-critical nets absorb the detours.
//!
//! The **incremental mode** is the flow's productivity lever: locked
//! routes seed the occupancy map and are never touched, so an assembled
//! design only pays for its inter-component nets.

use crate::PnrError;
use pi_fabric::{Device, TileCoord, TileKind};
use pi_netlist::{Design, Endpoint, Module, Route};
use pi_obs::Obs;
use rayon::prelude::*;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Routing options.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Negotiation iterations before giving up on congestion.
    pub max_iters: usize,
    /// Wires available per tile.
    pub capacity: u16,
    /// Decompose multi-terminal nets into a rectilinear Steiner topology
    /// and route it as two-pin segments (tight per-segment bounding boxes)
    /// instead of a distance-ordered fan-out star. Segment A* prefers the
    /// deepest node on f-score ties, collapsing the zero-congestion
    /// plateau two-pin searches otherwise sweep.
    pub steiner: bool,
    /// Re-order rip-up/re-route by STA criticality every iteration and
    /// scale congestion pricing per net (critical nets route first and
    /// straight; non-critical nets detour). The reworked negotiation loop
    /// also stops once overuse is no longer attributable to any net it
    /// owns, instead of spinning to `max_iters`.
    pub slack_order: bool,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iters: 8,
            // Wires per tile. Sized so a chip-filling monolithic design
            // (~26 average occupancy) negotiates to legality with headroom.
            capacity: 64,
            steiner: true,
            slack_order: true,
        }
    }
}

impl RouteOptions {
    /// The pre-Steiner, pre-slack router: distance-ordered star routing in
    /// net index order. The quality/speed baseline the `router` bench
    /// compares against.
    pub fn star_baseline() -> Self {
        RouteOptions {
            steiner: false,
            slack_order: false,
            ..RouteOptions::default()
        }
    }
}

/// Statistics from a routing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteStats {
    /// Nets actually routed in this run (locked nets are not counted).
    pub routed_nets: usize,
    /// Nets with fewer than two located endpoints (trivially routed).
    pub trivial_nets: usize,
    /// Total tiles occupied by the routes created in this run.
    pub wirelength: u64,
    /// Tiles still over capacity after negotiation (0 = fully legal).
    pub overused_tiles: usize,
    /// Negotiation iterations used.
    pub iterations: usize,
    /// A* open-set pops across the whole run — the router's work metric.
    pub expansions: u64,
    /// Two-pin segments routed through Steiner decomposition.
    pub steiner_segments: u64,
    /// Rip-ups of timing-critical (negative-slack) nets — these route
    /// first, at reduced congestion pricing, in the next iteration.
    pub criticality_reroutes: u64,
    /// Snapshot proposals that collided with an earlier merge (tile at
    /// capacity) and were re-routed against the live state.
    pub parallel_conflicts: u64,
}

/// Post-routing channel-occupancy map, consumed by the timing model's
/// congestion term and by the component placer's congestion estimate.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    cols: u16,
    rows: u16,
    capacity: u16,
    occ: Vec<u16>,
}

impl CongestionMap {
    fn idx(&self, at: TileCoord) -> usize {
        debug_assert!(at.col < self.cols && at.row < self.rows);
        at.col as usize * self.rows as usize + at.row as usize
    }

    /// Fraction of capacity in use at a tile (can exceed 1.0 while
    /// negotiation is incomplete).
    pub fn fraction_at(&self, at: TileCoord) -> f64 {
        f64::from(self.occ[self.idx(at)]) / f64::from(self.capacity)
    }

    /// Mean occupancy fraction over the bounding box of two endpoints —
    /// the local congestion a wire between them experiences.
    pub fn span_fraction(&self, a: TileCoord, b: TileCoord) -> f64 {
        let (c0, c1) = (a.col.min(b.col), a.col.max(b.col));
        let (r0, r1) = (a.row.min(b.row), a.row.max(b.row));
        let mut sum = 0u64;
        let mut n = 0u64;
        for c in c0..=c1 {
            for r in r0..=r1 {
                sum += u64::from(self.occ[c as usize * self.rows as usize + r as usize]);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64 / f64::from(self.capacity)
        }
    }

    /// Tiles over capacity.
    pub fn overused(&self) -> usize {
        self.occ.iter().filter(|&&o| o > self.capacity).count()
    }
}

/// The shared congestion state: per-tile occupancy, history and base
/// costs. Frozen (shared immutably) while a wave of nets routes in
/// parallel; mutated only by the sequential merge and rip-up phases.
struct Costs {
    cols: u16,
    rows: u16,
    occ: Vec<u16>,
    hist: Vec<f32>,
    /// Per-tile base cost: 1 for fabric, higher for discontinuities.
    base: Vec<f32>,
}

impl Costs {
    fn new(device: &Device) -> Costs {
        let cols = device.cols();
        let rows = device.rows();
        let n = cols as usize * rows as usize;
        let mut base = vec![1.0f32; n];
        for c in 0..cols {
            let kind = device.column_kind(c).expect("column in range");
            let extra = match kind {
                TileKind::Io => 3.0,
                TileKind::Gap => 1.0,
                _ => 0.0,
            };
            if extra > 0.0 {
                for r in 0..rows {
                    base[c as usize * rows as usize + r as usize] += extra;
                }
            }
        }
        Costs {
            cols,
            rows,
            occ: vec![0; n],
            hist: vec![0.0; n],
            base,
        }
    }

    fn tiles(&self) -> usize {
        self.base.len()
    }

    #[inline]
    fn idx(&self, at: TileCoord) -> usize {
        at.col as usize * self.rows as usize + at.row as usize
    }

    #[inline]
    fn coord(&self, idx: usize) -> TileCoord {
        TileCoord::new(
            (idx / self.rows as usize) as u16,
            (idx % self.rows as usize) as u16,
        )
    }

    /// Tile cost for one step. `pricing` scales the negotiated share
    /// (history + congestion) by net criticality: 1.0 is the neutral
    /// PathFinder price, <1 lets a critical net shoulder through
    /// congestion for a direct path, >1 pushes a non-critical net around
    /// it. The base cost is never scaled — distance stays distance.
    fn node_cost(&self, idx: usize, capacity: u16, pricing: f32) -> f32 {
        let occ = self.occ[idx];
        let over = if occ >= capacity {
            8.0 + 4.0 * f32::from(occ - capacity)
        } else {
            // Soft pressure keeps channels balanced before they overflow.
            f32::from(occ) / f32::from(capacity)
        };
        self.base[idx] + pricing * (self.hist[idx] + over)
    }

    /// A read-only snapshot in the map form the timing model consumes.
    fn congestion_snapshot(&self, capacity: u16) -> CongestionMap {
        CongestionMap {
            cols: self.cols,
            rows: self.rows,
            capacity,
            occ: self.occ.clone(),
        }
    }
}

/// Per-worker A* scratch, generation-stamped to avoid clearing. One lives
/// per OS thread (thread-local) so parallel waves never contend; results
/// depend only on [`Costs`], never on which scratch ran the search.
struct Scratch {
    gen: Vec<u32>,
    gscore: Vec<f32>,
    came: Vec<u32>,
    generation: u32,
    /// Open-set heap, kept here so one allocation serves the thousands of
    /// A* calls a routing run makes (cleared, not dropped, between calls).
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Reconstructed path of the last successful A* (sink→tree order).
    path: Vec<usize>,
    /// Nodes popped off the open set across every A* call on this scratch.
    expansions: u64,
    /// A* invocations (one per two-pin segment or net sink attempted).
    astar_calls: u64,
}

impl Scratch {
    fn new(tiles: usize) -> Scratch {
        Scratch {
            gen: vec![0; tiles],
            gscore: vec![0.0; tiles],
            came: vec![u32::MAX; tiles],
            generation: 0,
            heap: BinaryHeap::new(),
            path: Vec::new(),
            expansions: 0,
            astar_calls: 0,
        }
    }

    /// A* from any of `sources` to `sink`, restricted to a bounding box.
    /// On success fills `self.path` with the tiles sink→source-tree
    /// (inclusive) and returns `true`; on failure returns `false` with the
    /// path empty. Both the open heap and the path vector are reused
    /// allocations — the router's inner loop runs allocation-free after
    /// warm-up.
    #[allow(clippy::too_many_arguments)]
    fn astar(
        &mut self,
        costs: &Costs,
        sources: &[usize],
        sink: usize,
        bbox: (u16, u16, u16, u16),
        capacity: u16,
        pricing: f32,
        deep_ties: bool,
    ) -> bool {
        self.path.clear();
        self.astar_calls += 1;
        self.generation += 1;
        let gen = self.generation;
        let rows = costs.rows as usize;
        let sink_at = costs.coord(sink);
        // On uncongested fabric every tile in the monotone rectangle
        // between the endpoints shares the same f = g + h, and index-order
        // ties make A* sweep that whole plateau. Preferring the deepest
        // node (largest g) on f-ties marches straight at the sink instead:
        // same path cost, a fraction of the pops. Off in the baseline so
        // `star_baseline()` reproduces the pre-change router exactly
        // (`(f, 0, node)` orders identically to the old `(f, node)` key).
        let tie = |g: f32| -> u64 {
            if deep_ties {
                u64::MAX - to_key(g)
            } else {
                0
            }
        };
        // Take the heap out so pushing/popping does not alias the borrows
        // of the scratch arrays below; returned (cleared) on every exit.
        let mut heap = std::mem::take(&mut self.heap);
        for &s in sources {
            self.gen[s] = gen;
            self.gscore[s] = 0.0;
            self.came[s] = u32::MAX;
            let h = costs.coord(s).manhattan(&sink_at) as f32;
            heap.push(Reverse((to_key(h), tie(0.0), s)));
        }
        let (c0, c1, r0, r1) = bbox;
        let mut found = false;
        while let Some(Reverse((_, _, node))) = heap.pop() {
            self.expansions += 1;
            if node == sink {
                // Reconstruct.
                self.path.push(node);
                let mut cur = node;
                while self.came[cur] != u32::MAX {
                    cur = self.came[cur] as usize;
                    self.path.push(cur);
                }
                found = true;
                break;
            }
            let at = costs.coord(node);
            let g = self.gscore[node];
            let neighbours = [
                (at.col > c0).then(|| node - rows),
                (at.col < c1).then(|| node + rows),
                (at.row > r0).then(|| node - 1),
                (at.row < r1).then(|| node + 1),
            ];
            for n in neighbours.into_iter().flatten() {
                let ng = g + costs.node_cost(n, capacity, pricing);
                if self.gen[n] != gen || ng < self.gscore[n] {
                    self.gen[n] = gen;
                    self.gscore[n] = ng;
                    self.came[n] = node as u32;
                    let h = costs.coord(n).manhattan(&sink_at) as f32;
                    heap.push(Reverse((to_key(ng + h), tie(ng), n)));
                }
            }
        }
        heap.clear();
        self.heap = heap;
        found
    }
}

thread_local! {
    /// One scratch per worker thread, sized lazily for the current grid.
    /// Scratch identity cannot influence results (generation stamps make
    /// every A* self-contained), so thread scheduling stays invisible.
    static TL_SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

fn with_scratch<R>(tiles: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
    TL_SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let scratch = slot.get_or_insert_with(|| Scratch::new(tiles));
        if scratch.gen.len() != tiles {
            *scratch = Scratch::new(tiles);
        }
        f(scratch)
    })
}

/// Order-preserving f32 → u64 key for the binary heap.
///
/// Invariant: for finite costs `a <= b`, `to_key(a) <= to_key(b)`. The
/// `max(0.0)` clamps negatives — and NaN, whose `max` is the other operand
/// — to zero; the ×1024 scale and the saturating `as` cast are both
/// monotone. Resolution is 1/1024: costs closer than that may tie, which
/// only reorders equal-key pops, never best-first order. Above
/// 2^24/1024 = 16384 the f32 mantissa step exceeds the quantization step,
/// so distinct f32 costs still map to distinct-or-ordered keys; history
/// costs (+1.5 per overused tile per iteration) therefore cannot break
/// heap order no matter how long negotiation runs, and saturation would
/// need costs near 1.8e16 — far beyond any run. Infinity saturates to
/// `u64::MAX`, i.e. sorts last, which is the right behaviour for an
/// unreachable-cost sentinel.
#[inline]
fn to_key(f: f32) -> u64 {
    (f.max(0.0) * 1024.0) as u64
}

/// Rectilinear Steiner topology over a set of terminals (first terminal =
/// driver). Returns tree edges `(from, to)` in route order: every edge's
/// `from` point is already connected when the edge comes up, so a router
/// can walk the list and treat the accumulated tree as its source set.
///
/// Construction: Prim's MST over Manhattan distance (deterministic
/// index-order tie-breaks), then one greedy pass of Hanan-point insertion
/// — for each tree node with two or more neighbours, the median point of
/// the node and its two best neighbours replaces the two edges when that
/// strictly shortens the tree. Total edge length never exceeds the star
/// topology (every spanning tree is at most the star; insertion only
/// shortens), which is the wirelength bound `tests/router_props.rs`
/// property-checks.
pub fn steiner_topology(terminals: &[TileCoord]) -> Vec<(TileCoord, TileCoord)> {
    // Dedup by tile, preserving first-seen order (driver stays first).
    let mut pts: Vec<TileCoord> = Vec::with_capacity(terminals.len());
    for t in terminals {
        if !pts.contains(t) {
            pts.push(*t);
        }
    }
    if pts.len() < 2 {
        return Vec::new();
    }
    let dist = |a: TileCoord, b: TileCoord| a.manhattan(&b) as u64;

    // Prim from the driver; ties break toward the lower index.
    let n_terms = pts.len();
    let mut in_tree = vec![false; n_terms];
    let mut best: Vec<(u64, usize)> = (0..n_terms).map(|i| (dist(pts[0], pts[i]), 0)).collect();
    in_tree[0] = true;
    // adj over `pts` indices; Steiner points are appended as they appear.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_terms];
    for _ in 1..n_terms {
        let mut pick = usize::MAX;
        for i in 0..n_terms {
            if !in_tree[i] && (pick == usize::MAX || best[i].0 < best[pick].0) {
                pick = i;
            }
        }
        let (_, from) = best[pick];
        in_tree[pick] = true;
        adj[from].push(pick);
        adj[pick].push(from);
        for i in 0..n_terms {
            if !in_tree[i] {
                let d = dist(pts[pick], pts[i]);
                if d < best[i].0 {
                    best[i] = (d, pick);
                }
            }
        }
    }

    // Greedy Hanan-point insertion: for node b and neighbours a, c, the
    // median point strictly shortens d(a,b)+d(b,c) whenever the three
    // spans overlap. One pass in index order keeps it deterministic.
    let med = |a: u16, b: u16, c: u16| {
        let mut v = [a, b, c];
        v.sort_unstable();
        v[1]
    };
    for b in 0..n_terms {
        loop {
            let nbrs = adj[b].clone();
            if nbrs.len() < 2 {
                break;
            }
            let mut cut = None;
            for (i, &a) in nbrs.iter().enumerate() {
                for &c in nbrs.iter().skip(i + 1) {
                    let s = TileCoord::new(
                        med(pts[a].col, pts[b].col, pts[c].col),
                        med(pts[a].row, pts[b].row, pts[c].row),
                    );
                    let old = dist(pts[a], pts[b]) + dist(pts[b], pts[c]);
                    let new = dist(pts[a], s) + dist(pts[b], s) + dist(pts[c], s);
                    if new < old && cut.map(|(g, _, _, _)| old - new > g).unwrap_or(true) {
                        cut = Some((old - new, a, c, s));
                    }
                }
            }
            let Some((_, a, c, s)) = cut else { break };
            let si = pts.len();
            pts.push(s);
            adj.push(Vec::new());
            for (x, y) in [(a, b), (b, c)] {
                adj[x].retain(|&v| v != y);
                adj[y].retain(|&v| v != x);
            }
            for x in [a, b, c] {
                adj[x].push(si);
                adj[si].push(x);
            }
        }
    }

    // Orient: BFS from the driver, neighbours in index order.
    let mut order = Vec::with_capacity(pts.len().saturating_sub(1));
    let mut seen = vec![false; pts.len()];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        let mut nbrs = adj[u].clone();
        nbrs.sort_unstable();
        for v in nbrs {
            if !seen[v] {
                seen[v] = true;
                order.push((pts[u], pts[v]));
                queue.push_back(v);
            }
        }
    }
    order
}

/// Deterministic criticality order: indices sorted most-negative-slack
/// first, ties broken by index. Always a permutation of `0..slacks.len()`
/// (property-checked in `tests/router_props.rs`).
pub fn criticality_order(slacks: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..slacks.len()).collect();
    order.sort_by(|&a, &b| slacks[a].total_cmp(&slacks[b]).then(a.cmp(&b)));
    order
}

/// One routable net: located endpoints (source first) and where to write
/// the result.
struct Task {
    endpoints: Vec<TileCoord>,
    slot: Slot,
}

#[derive(Clone, Copy)]
enum Slot {
    Intra { inst: usize, net: usize },
    Top { net: usize },
}

/// One net's routing attempt against a (frozen or live) cost state.
struct NetAttempt {
    /// Tree tiles in growth order, first = driver tile; `None` = failed
    /// (nothing was applied — attempts never mutate the cost state).
    tree: Option<Vec<usize>>,
    expansions: u64,
    astar_calls: u64,
    steiner_segments: u64,
}

/// Route one net against `costs` without mutating anything. Multi-terminal
/// nets take the Steiner path when enabled; two-pin nets and the disabled
/// path reproduce the classic distance-ordered star.
fn route_net(
    costs: &Costs,
    scratch: &mut Scratch,
    endpoints: &[TileCoord],
    opts: &RouteOptions,
    margin: i32,
    pricing: f32,
) -> NetAttempt {
    let exp0 = scratch.expansions;
    let calls0 = scratch.astar_calls;
    let mut tree: Vec<usize> = Vec::new();
    tree.push(costs.idx(endpoints[0]));
    let mut steiner_segments = 0u64;
    let mut ok = true;

    let segments = if opts.steiner {
        let topo = steiner_topology(endpoints);
        if topo.len() >= 2 {
            Some(topo)
        } else {
            None
        }
    } else {
        None
    };

    match segments {
        Some(segs) => {
            // Two-pin segments with tight per-segment boxes. The segment's
            // `from` end is already in the tree; every tree tile inside the
            // box is a free source, so segments share trunks.
            let mut seg_sources: Vec<usize> = Vec::new();
            for (a, b) in segs {
                let sink = costs.idx(b);
                if tree.contains(&sink) {
                    continue;
                }
                let bbox = bbox_of(&[a, b], margin, costs.cols, costs.rows);
                let (c0, c1, r0, r1) = bbox;
                seg_sources.clear();
                seg_sources.extend(tree.iter().copied().filter(|&t| {
                    let at = costs.coord(t);
                    at.col >= c0 && at.col <= c1 && at.row >= r0 && at.row <= r1
                }));
                if seg_sources.is_empty() {
                    // `a` is a bbox corner and always in the tree.
                    seg_sources.push(costs.idx(a));
                }
                if scratch.astar(
                    costs,
                    &seg_sources,
                    sink,
                    bbox,
                    opts.capacity,
                    pricing,
                    true,
                ) {
                    steiner_segments += 1;
                    for i in (0..scratch.path.len()).rev() {
                        let p = scratch.path[i];
                        if !tree.contains(&p) {
                            tree.push(p);
                        }
                    }
                } else {
                    ok = false;
                    break;
                }
            }
        }
        None => {
            // Star: sinks by distance from the driver, whole-net box.
            let bbox = bbox_of(endpoints, margin, costs.cols, costs.rows);
            let mut sinks: Vec<TileCoord> = endpoints[1..].to_vec();
            sinks.sort_by_key(|s| s.manhattan(&endpoints[0]));
            for &sink in &sinks {
                let sidx = costs.idx(sink);
                if tree.contains(&sidx) {
                    continue;
                }
                if scratch.astar(
                    costs,
                    &tree,
                    sidx,
                    bbox,
                    opts.capacity,
                    pricing,
                    opts.steiner,
                ) {
                    // A* reconstructs sink→tree; append in reverse so the
                    // route tiles read as a forward (tree→sink) path.
                    for i in (0..scratch.path.len()).rev() {
                        let p = scratch.path[i];
                        if !tree.contains(&p) {
                            tree.push(p);
                        }
                    }
                } else {
                    ok = false;
                    break;
                }
            }
        }
    }

    NetAttempt {
        tree: ok.then_some(tree),
        expansions: scratch.expansions - exp0,
        astar_calls: scratch.astar_calls - calls0,
        steiner_segments,
    }
}

/// Per-iteration slack feedback: maps the live congestion state to
/// `(per-task slack ps, clock period ps)`. `None` means "no timing data
/// this iteration" (e.g. STA failed on a combinational loop) and the
/// router falls back to index order at neutral pricing.
type SlackFn<'a> = &'a dyn Fn(&CongestionMap) -> Option<(Vec<f64>, f64)>;

/// The negotiation engine shared by module- and design-level entry points.
/// Emits one `pathfinder_iter` point per negotiation iteration when the
/// handle is enabled, plus one `steiner_net` point per decomposed
/// multi-terminal net (buffered per net, flushed in merge order, so the
/// stream is byte-identical at any `PI_THREADS`).
fn run(
    costs: &mut Costs,
    tasks: &[Task],
    opts: &RouteOptions,
    obs: &Obs,
    slack_fn: Option<SlackFn>,
) -> (Vec<Option<Route>>, RouteStats) {
    let mut stats = RouteStats::default();
    let mut routes: Vec<Option<Route>> = (0..tasks.len()).map(|_| None).collect();
    let tiles = costs.tiles();
    // Merge-phase scratch for conflict re-routes (workers use their own).
    let mut merge_scratch = Scratch::new(tiles);
    let pathfinder_span = obs.span_with("pathfinder", &[("tasks", tasks.len().into())]);

    // Margin grows with negotiation iterations so desperate nets may detour.
    for iter in 0..opts.max_iters.max(1) {
        stats.iterations = iter + 1;
        let margin = 6 + 6 * iter as i32;

        // Trivial nets (fewer than two located endpoints) route once.
        if iter == 0 {
            for (ti, task) in tasks.iter().enumerate() {
                if task.endpoints.len() < 2 {
                    routes[ti] = Some(Route::default());
                    stats.trivial_nets += 1;
                }
            }
        }
        let mut pending: Vec<usize> = (0..tasks.len())
            .filter(|&ti| routes[ti].is_none())
            .collect();

        // Slack feedback: refresh per-net criticality from the live
        // congestion state, order this wave most-critical-first and price
        // each net's congestion share by its criticality.
        let mut slacks: Option<Vec<f64>> = None;
        let mut pricing: Vec<f32> = Vec::new();
        if opts.slack_order && !pending.is_empty() {
            if let Some(f) = slack_fn {
                if let Some((s, period)) = f(&costs.congestion_snapshot(opts.capacity)) {
                    debug_assert_eq!(s.len(), tasks.len());
                    let period = period.max(1.0);
                    pricing = s
                        .iter()
                        .map(|&sl| {
                            let crit = (1.0 - sl / period).clamp(0.0, 1.0) as f32;
                            1.25 - 0.75 * crit
                        })
                        .collect();
                    let pending_slacks: Vec<f64> = pending.iter().map(|&ti| s[ti]).collect();
                    pending = criticality_order(&pending_slacks)
                        .into_iter()
                        .map(|i| pending[i])
                        .collect();
                    slacks = Some(s);
                }
            }
        }
        let price_of = |ti: usize| -> f32 {
            if pricing.is_empty() {
                1.0
            } else {
                pricing[ti]
            }
        };

        // Proposal wave: every pending net routes against the frozen
        // iteration-start snapshot, in parallel. Results are collected in
        // wave order (the pool guarantees index order), so the schedule
        // cannot leak into routes or telemetry.
        let snap: &Costs = costs;
        let items: Vec<(usize, pi_obs::BufferedObs)> =
            pending.iter().map(|&ti| (ti, obs.buffered())).collect();
        let proposals: Vec<(usize, NetAttempt, pi_obs::BufferedObs)> = items
            .into_par_iter()
            .map(|(ti, buf)| {
                let attempt = with_scratch(tiles, |scratch| {
                    route_net(
                        snap,
                        scratch,
                        &tasks[ti].endpoints,
                        opts,
                        margin,
                        price_of(ti),
                    )
                });
                if buf.obs().enabled() && attempt.steiner_segments >= 2 {
                    buf.obs().point(
                        "steiner_net",
                        &[
                            ("net", ti.into()),
                            ("segments", attempt.steiner_segments.into()),
                            ("expansions", attempt.expansions.into()),
                        ],
                    );
                }
                (ti, attempt, buf)
            })
            .collect();

        // Deterministic merge, in wave (criticality) order: apply each
        // proposal unless an earlier merge already filled one of its tiles
        // to capacity — those conflicts re-route immediately against the
        // live state.
        let mut iter_exp = 0u64;
        let mut iter_calls = 0u64;
        let mut iter_steiner = 0u64;
        let mut iter_conflicts = 0u64;
        for (ti, attempt, buf) in proposals {
            buf.flush_into(obs);
            iter_exp += attempt.expansions;
            iter_calls += attempt.astar_calls;
            iter_steiner += attempt.steiner_segments;
            let mut tree = attempt.tree;
            if let Some(t) = &tree {
                if t[1..].iter().any(|&x| costs.occ[x] >= opts.capacity) {
                    iter_conflicts += 1;
                    let retry = route_net(
                        costs,
                        &mut merge_scratch,
                        &tasks[ti].endpoints,
                        opts,
                        margin,
                        price_of(ti),
                    );
                    iter_exp += retry.expansions;
                    iter_calls += retry.astar_calls;
                    iter_steiner += retry.steiner_segments;
                    tree = retry.tree;
                }
            }
            if let Some(t) = tree {
                for &x in &t[1..] {
                    costs.occ[x] += 1;
                }
                let tiles: Vec<TileCoord> = t.iter().map(|&p| costs.coord(p)).collect();
                routes[ti] = Some(Route { tiles });
            }
        }
        stats.expansions += iter_exp;
        stats.steiner_segments += iter_steiner;
        stats.parallel_conflicts += iter_conflicts;

        // Negotiate: find overused tiles, rip up offenders, raise history.
        let overused: Vec<usize> = costs
            .occ
            .iter()
            .enumerate()
            .filter(|(_, &o)| o > opts.capacity)
            .map(|(i, _)| i)
            .collect();
        let done = overused.is_empty() && routes.iter().all(|r| r.is_some());
        for &t in &overused {
            costs.hist[t] += 1.5;
        }
        let overused_count = overused.len();
        let mut ripups = 0usize;
        let mut crit_reroutes = 0u64;
        if !done && iter + 1 < opts.max_iters {
            let over_set: std::collections::HashSet<usize> = overused.into_iter().collect();
            for (ti, route) in routes.iter_mut().enumerate() {
                let Some(r) = route else { continue };
                if r.tiles.is_empty() {
                    continue;
                }
                if r.tiles.iter().any(|&t| over_set.contains(&costs.idx(t))) {
                    for &t in &r.tiles[1..] {
                        let i = costs.idx(t);
                        costs.occ[i] = costs.occ[i].saturating_sub(1);
                    }
                    *route = None;
                    ripups += 1;
                    if slacks.as_ref().map(|s| s[ti] < 0.0).unwrap_or(false) {
                        // A timing-critical net goes back in the queue; it
                        // routes first, at reduced congestion pricing, next
                        // iteration.
                        crit_reroutes += 1;
                    }
                }
            }
        }
        stats.criticality_reroutes += crit_reroutes;
        // Stall detection (slack-ordered negotiation only): when every net
        // is routed and the rip-up pass found nothing to rip, the residual
        // overuse is not attributable to any net this run owns (it was
        // seeded by locked instance routes) — further iterations can only
        // raise history on tiles nobody crosses. The pre-change router
        // spins to max_iters here; the reworked loop stops.
        let stalled =
            opts.slack_order && !done && ripups == 0 && routes.iter().all(|r| r.is_some());
        if obs.enabled() {
            obs.point(
                "pathfinder_iter",
                &[
                    ("iter", iter.into()),
                    ("overused", overused_count.into()),
                    ("ripups", ripups.into()),
                    ("expansions", iter_exp.into()),
                    ("astar_calls", iter_calls.into()),
                    (
                        "unrouted",
                        routes.iter().filter(|r| r.is_none()).count().into(),
                    ),
                    (
                        "hist_total",
                        costs.hist.iter().map(|&h| f64::from(h)).sum::<f64>().into(),
                    ),
                    ("steiner_segments", iter_steiner.into()),
                    ("criticality_reroutes", crit_reroutes.into()),
                    ("parallel_conflicts", iter_conflicts.into()),
                ],
            );
        }
        if done || stalled {
            break;
        }
    }
    pathfinder_span.end();

    stats.overused_tiles = costs.occ.iter().filter(|&&o| o > opts.capacity).count();
    stats.routed_nets = routes.iter().filter(|r| r.is_some()).count() - stats.trivial_nets;
    stats.wirelength = routes.iter().flatten().map(|r| r.tiles.len() as u64).sum();
    (routes, stats)
}

fn bbox_of(pts: &[TileCoord], margin: i32, cols: u16, rows: u16) -> (u16, u16, u16, u16) {
    let mut c0 = u16::MAX;
    let mut c1 = 0;
    let mut r0 = u16::MAX;
    let mut r1 = 0;
    for p in pts {
        c0 = c0.min(p.col);
        c1 = c1.max(p.col);
        r0 = r0.min(p.row);
        r1 = r1.max(p.row);
    }
    let lo = |v: u16| (i32::from(v) - margin).max(0) as u16;
    let hi = |v: u16, max: u16| ((i32::from(v) + margin) as u16).min(max - 1);
    (lo(c0), hi(c1, cols), lo(r0), hi(r1, rows))
}

/// Locate a module net's endpoints: placed cells and partition-pinned
/// ports. Unlocatable endpoints are skipped (ports awaiting partpin
/// planning).
fn module_net_endpoints(module: &Module, net: &pi_netlist::Net) -> Vec<TileCoord> {
    net.endpoints()
        .filter_map(|e| match e {
            Endpoint::Cell(c) => module.cells()[c.index()].placement,
            Endpoint::Port(p) => module.ports()[p.index()].partpin,
        })
        .collect()
}

/// Route all unrouted non-clock nets of one module. Returns stats plus the
/// resulting congestion map (used by congestion-aware timing).
pub fn route_module(
    module: &mut Module,
    device: &Device,
    opts: &RouteOptions,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    route_module_obs(module, device, opts, &Obs::null())
}

/// [`route_module`] with telemetry: one `pathfinder_iter` point per
/// negotiation iteration (overused tiles, rip-ups, history-cost growth,
/// Steiner/criticality/conflict counters) under the `pnr::route` scope.
pub fn route_module_obs(
    module: &mut Module,
    device: &Device,
    opts: &RouteOptions,
    obs: &Obs,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    let obs = obs.scoped("pnr::route");
    let mut costs = Costs::new(device);
    // Seed occupancy with whatever is already routed (locked or not).
    let mut tasks = Vec::new();
    for (ni, net) in module.nets().iter().enumerate() {
        if net.is_clock {
            continue;
        }
        match &net.route {
            Some(r) => {
                for t in &r.tiles {
                    let i = costs.idx(*t);
                    costs.occ[i] += 1;
                }
            }
            None => tasks.push(Task {
                endpoints: module_net_endpoints(module, net),
                slot: Slot::Intra { inst: 0, net: ni },
            }),
        }
    }
    let task_nets: Vec<usize> = tasks
        .iter()
        .map(|t| match t.slot {
            Slot::Intra { net, .. } | Slot::Top { net } => net,
        })
        .collect();
    let m_ref: &Module = module;
    let slack_fn = move |map: &CongestionMap| -> Option<(Vec<f64>, f64)> {
        let (net_slacks, period) =
            crate::timing::net_slacks_module(m_ref, device, Some(map)).ok()?;
        Some((task_nets.iter().map(|&ni| net_slacks[ni]).collect(), period))
    };
    let (routes, stats) = run(&mut costs, &tasks, opts, &obs, Some(&slack_fn));
    let nets = module.nets_mut()?;
    for (task, route) in tasks.iter().zip(routes) {
        let Slot::Intra { net, .. } = task.slot else {
            unreachable!("module routing only creates intra slots")
        };
        nets[net].route = route;
    }
    let map = CongestionMap {
        cols: costs.cols,
        rows: costs.rows,
        capacity: opts.capacity,
        occ: costs.occ,
    };
    Ok((stats, map))
}

/// Route an assembled design: locked module routes seed the congestion map
/// and only unrouted nets (typically the inter-component ones) are routed.
/// Returns stats plus the final congestion map for timing.
pub fn route_design(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    route_design_obs(design, device, opts, &Obs::null())
}

/// [`route_design`] with telemetry (see [`route_module_obs`]).
pub fn route_design_obs(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
    obs: &Obs,
) -> Result<(RouteStats, CongestionMap), PnrError> {
    let obs = obs.scoped("pnr::route");
    let mut costs = Costs::new(device);
    let mut tasks = Vec::new();
    for (ii, inst) in design.instances().iter().enumerate() {
        for (ni, net) in inst.module.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            match &net.route {
                Some(r) => {
                    for t in &r.tiles {
                        let i = costs.idx(*t);
                        costs.occ[i] += 1;
                    }
                }
                None => tasks.push(Task {
                    endpoints: module_net_endpoints(&inst.module, net),
                    slot: Slot::Intra { inst: ii, net: ni },
                }),
            }
        }
    }
    for (ni, tnet) in design.top_nets().iter().enumerate() {
        if let Some(route) = &tnet.route {
            for t in &route.tiles {
                let i = costs.idx(*t);
                costs.occ[i] += 1;
            }
            continue;
        }
        let endpoints: Vec<TileCoord> = tnet
            .endpoints()
            .filter_map(|ep| design.top_endpoint_coord(ep))
            .collect();
        tasks.push(Task {
            endpoints,
            slot: Slot::Top { net: ni },
        });
    }

    let slots: Vec<Slot> = tasks.iter().map(|t| t.slot).collect();
    let d_ref: &Design = design;
    let slack_fn = move |map: &CongestionMap| -> Option<(Vec<f64>, f64)> {
        let (inst_slacks, top_slacks, period) =
            crate::timing::net_slacks_design(d_ref, device, Some(map)).ok()?;
        Some((
            slots
                .iter()
                .map(|s| match *s {
                    Slot::Intra { inst, net } => inst_slacks[inst][net],
                    Slot::Top { net } => top_slacks[net],
                })
                .collect(),
            period,
        ))
    };
    let (routes, stats) = run(&mut costs, &tasks, opts, &obs, Some(&slack_fn));
    for (task, route) in tasks.iter().zip(routes) {
        match task.slot {
            Slot::Intra { inst, net } => {
                // Instances may be locked (their unrouted nets should not
                // exist), so go through the unlocked path only.
                let m = &mut design.instances_mut()[inst].module;
                if !m.locked {
                    m.nets_mut()?[net].route = route;
                }
            }
            Slot::Top { net } => {
                design.top_nets_mut()[net].route = route;
            }
        }
    }
    let map = CongestionMap {
        cols: costs.cols,
        rows: costs.rows,
        capacity: opts.capacity,
        occ: costs.occ,
    };
    Ok((stats, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place_module, PlaceOptions};
    use pi_netlist::{Cell, CellKind, ModuleBuilder, StreamRole};

    fn placed_chain(n: usize, device: &Device, seed: u64) -> Module {
        let mut b = ModuleBuilder::new("chain");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let ids: Vec<_> = (0..n)
            .map(|i| b.cell(Cell::new(format!("s{i}"), CellKind::full_slice())))
            .collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(ids[0])]);
        for i in 1..n {
            b.connect(
                format!("n{i}"),
                Endpoint::Cell(ids[i - 1]),
                [Endpoint::Cell(ids[i])],
            );
        }
        b.connect("out", Endpoint::Cell(ids[n - 1]), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        place_module(
            &mut m,
            device,
            &PlaceOptions {
                seed,
                effort: 1.0,
                region: None,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn routes_all_nets() {
        let device = Device::test_part();
        let mut m = placed_chain(40, &device, 5);
        let (stats, _) = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        assert!(m.fully_routed());
        assert_eq!(stats.overused_tiles, 0);
        assert!(stats.wirelength > 0);
        assert!(stats.expansions > 0);
        // The port-connected nets are trivial (no partpins planned).
        assert_eq!(stats.trivial_nets, 2);
    }

    #[test]
    fn routes_form_connected_paths() {
        let device = Device::test_part();
        let mut m = placed_chain(10, &device, 7);
        let _ = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        for net in m.nets() {
            let Some(route) = &net.route else { continue };
            if route.tiles.len() < 2 {
                continue;
            }
            // Every consecutive pair of tiles is grid-adjacent or a tree
            // branch point (distance can jump when starting a new branch,
            // but for 2-pin chains it is a simple path).
            if net.degree() == 2 {
                for w in route.tiles.windows(2) {
                    assert!(w[0].manhattan(&w[1]) <= 1, "{:?}", w);
                }
            }
        }
    }

    #[test]
    fn locked_routes_are_untouched_and_seed_congestion() {
        let device = Device::test_part();
        let mut m = placed_chain(10, &device, 9);
        let _ = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        let saved: Vec<_> = m.nets().iter().map(|n| n.route.clone()).collect();
        m.lock();
        // Re-running the router on a locked module routes nothing new.
        let mut design = Design::new("d", "test-part", pi_netlist::DesignKind::Assembled);
        design.add_instance("a", m);
        let (stats, map) = route_design(&mut design, &device, &RouteOptions::default()).unwrap();
        assert_eq!(stats.routed_nets, 0);
        for (net, old) in design.instances()[0].module.nets().iter().zip(saved) {
            assert_eq!(net.route, old);
        }
        assert!(map.overused() == 0);
    }

    #[test]
    fn to_key_is_monotone_up_to_saturation() {
        // Heap order must survive costs far beyond the base-cost scale:
        // negotiation adds +1.5 history per overused tile per iteration,
        // and path costs accumulate over long detours.
        let samples: [f32; 11] = [
            0.0, 0.25, 0.5, 1.0, 7.5, 100.0, 1000.0, 16384.0, 1.0e6, 3.4e7, 1.0e10,
        ];
        for w in samples.windows(2) {
            assert!(
                to_key(w[0]) < to_key(w[1]),
                "to_key({}) = {} !< to_key({}) = {}",
                w[0],
                to_key(w[0]),
                w[1],
                to_key(w[1])
            );
        }
        // NaN and negatives clamp to zero instead of poisoning the heap.
        assert_eq!(to_key(f32::NAN), 0);
        assert_eq!(to_key(-3.0), 0);
        // Infinity saturates to the largest key (sorts last).
        assert_eq!(to_key(f32::INFINITY), u64::MAX);
        // Sub-resolution differences may tie but never invert.
        assert!(to_key(1.0) <= to_key(1.0 + 1.0 / 2048.0));
    }

    #[test]
    fn astar_detours_around_huge_history_costs() {
        // A wall of enormous history cost must still leave A* best-first:
        // the router funnels through the single cheap gap rather than
        // paying the wall (a broken key quantization would pop wall tiles
        // as if they were cheap).
        let device = Device::test_part();
        let mut costs = Costs::new(&device);
        let mut scratch = Scratch::new(costs.tiles());
        let wall_col = 5u16;
        for r in 1..costs.rows {
            let i = costs.idx(TileCoord::new(wall_col, r));
            costs.hist[i] = 1.0e6;
        }
        let src = costs.idx(TileCoord::new(2, 3));
        let sink = costs.idx(TileCoord::new(8, 3));
        let bbox = (0, costs.cols - 1, 0, costs.rows - 1);
        assert!(scratch.astar(&costs, &[src], sink, bbox, 64, 1.0, false));
        let crossings: Vec<TileCoord> = scratch
            .path
            .iter()
            .map(|&p| costs.coord(p))
            .filter(|c| c.col == wall_col)
            .collect();
        assert_eq!(
            crossings,
            vec![TileCoord::new(wall_col, 0)],
            "path must cross the wall exactly once, through the gap"
        );
        // The reused path buffer serves a second query unchanged.
        assert!(scratch.astar(&costs, &[src], sink, bbox, 64, 1.0, false));
        assert!(!scratch.path.is_empty());
    }

    #[test]
    fn deep_ties_collapse_the_zero_congestion_plateau() {
        // On empty fabric every tile in the monotone rectangle between the
        // endpoints shares the same f-score; index-order ties sweep the
        // plateau, depth-preferring ties march straight at the sink. Same
        // path cost, strictly fewer pops.
        let device = Device::test_part();
        let mut costs = Costs::new(&device);
        // Uniform fabric: the plateau argument is about equal step costs
        // (Io/Gap columns would perturb f and hide the effect).
        costs.base.fill(1.0);
        let src = costs.idx(TileCoord::new(1, 1));
        let sink = costs.idx(TileCoord::new(20, 14));
        let bbox = (0, costs.cols - 1, 0, costs.rows - 1);
        let mut flat = Scratch::new(costs.tiles());
        assert!(flat.astar(&costs, &[src], sink, bbox, 64, 1.0, false));
        let flat_len = flat.path.len();
        let mut deep = Scratch::new(costs.tiles());
        assert!(deep.astar(&costs, &[src], sink, bbox, 64, 1.0, true));
        assert_eq!(
            deep.path.len(),
            flat_len,
            "tie-break must not change path cost"
        );
        assert!(
            deep.expansions < flat.expansions,
            "deep ties must pop fewer nodes ({} !< {})",
            deep.expansions,
            flat.expansions
        );
    }

    #[test]
    fn negotiation_stops_when_overuse_is_not_rippable() {
        // Overuse seeded by locked instance routes cannot be fixed by
        // ripping up nets this run owns: the slack-ordered loop detects the
        // stall and stops after one iteration, the baseline spins to
        // max_iters raising history on tiles nobody crosses.
        let device = Device::test_part();
        let tasks = vec![Task {
            endpoints: vec![TileCoord::new(1, 1), TileCoord::new(4, 1)],
            slot: Slot::Top { net: 0 },
        }];
        let run_with = |opts: RouteOptions| -> usize {
            let mut costs = Costs::new(&device);
            let far = costs.idx(TileCoord::new(20, 10));
            costs.occ[far] = opts.capacity + 1;
            let (routes, stats) = run(&mut costs, &tasks, &opts, &Obs::null(), None);
            assert!(routes[0].is_some());
            stats.iterations
        };
        assert_eq!(run_with(RouteOptions::star_baseline()), 8);
        assert_eq!(run_with(RouteOptions::default()), 1);
    }

    #[test]
    fn congestion_negotiation_resolves_hotspots() {
        // Many parallel nets forced through a narrow region.
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("hot");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let n = 60;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..n {
            left.push(b.cell(Cell::new(format!("l{i}"), CellKind::full_slice())));
            right.push(b.cell(Cell::new(format!("r{i}"), CellKind::full_slice())));
        }
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(left[0])]);
        for i in 0..n {
            b.connect(
                format!("x{i}"),
                Endpoint::Cell(left[i]),
                [Endpoint::Cell(right[i])],
            );
        }
        b.connect("out", Endpoint::Cell(right[n - 1]), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        // Manually place: left column cluster and right column cluster.
        for (i, &id) in left.iter().enumerate() {
            m.set_placement(id, TileCoord::new(1, (i % 20) as u16)).ok();
        }
        for (i, &id) in right.iter().enumerate() {
            m.set_placement(id, TileCoord::new(24, (i % 20) as u16))
                .ok();
        }
        // Fill remaining placements for validity (cells may share tiles in
        // this synthetic stress test; the router only cares about coords).
        let opts = RouteOptions {
            max_iters: 10,
            capacity: 8,
            ..RouteOptions::default()
        };
        let (stats, map) = route_module(&mut m, &device, &opts).unwrap();
        assert_eq!(stats.overused_tiles, 0, "negotiation failed");
        assert_eq!(map.overused(), 0);
    }

    #[test]
    fn steiner_topology_spans_terminals_within_star_length() {
        // A T-shaped terminal set: the Steiner point (5,5) saves wire over
        // both the star and the terminal-only MST.
        let terms = [
            TileCoord::new(5, 0),
            TileCoord::new(0, 5),
            TileCoord::new(10, 5),
            TileCoord::new(5, 10),
        ];
        let edges = steiner_topology(&terms);
        let total: u64 = edges.iter().map(|(a, b)| a.manhattan(b) as u64).sum();
        let star: u64 = terms[1..]
            .iter()
            .map(|t| t.manhattan(&terms[0]) as u64)
            .sum();
        assert!(total <= star, "steiner {total} > star {star}");
        // The optimal rectilinear Steiner tree here is 20 (three arms of 5
        // plus the stem); the greedy insertion must find it.
        assert_eq!(total, 20);
        // Every terminal is reachable through the edge list.
        let mut reach: Vec<TileCoord> = vec![terms[0]];
        for (a, b) in &edges {
            assert!(reach.contains(a), "edge source {a:?} not yet in tree");
            reach.push(*b);
        }
        for t in &terms {
            assert!(reach.contains(t), "terminal {t:?} not spanned");
        }
    }

    #[test]
    fn steiner_routing_connects_high_fanout_nets() {
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("fan");
        let din = b.input("din", StreamRole::Source, 8);
        let src = b.cell(Cell::new("src", CellKind::full_slice()));
        let sinks: Vec<_> = (0..6)
            .map(|i| b.cell(Cell::new(format!("k{i}"), CellKind::full_slice())))
            .collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(src)]);
        b.connect(
            "fan",
            Endpoint::Cell(src),
            sinks.iter().map(|&s| Endpoint::Cell(s)).collect::<Vec<_>>(),
        );
        let mut m = b.finish().unwrap();
        m.set_placement(src, TileCoord::new(12, 10)).unwrap();
        let spots = [(2, 2), (2, 18), (22, 2), (22, 18), (12, 2), (12, 18)];
        for (&id, &(c, r)) in sinks.iter().zip(spots.iter()) {
            m.set_placement(id, TileCoord::new(c, r)).unwrap();
        }
        let (stats, _) = route_module(&mut m, &device, &RouteOptions::default()).unwrap();
        assert!(stats.steiner_segments > 0, "fan-out net not decomposed");
        let net = m.nets().iter().find(|n| n.name == "fan").unwrap();
        let route = net.route.as_ref().unwrap();
        for t in [TileCoord::new(12, 10)].iter().chain(
            spots
                .iter()
                .map(|&(c, r)| TileCoord::new(c, r))
                .collect::<Vec<_>>()
                .iter(),
        ) {
            assert!(route.tiles.contains(t), "terminal {t:?} not on the route");
        }
    }

    #[test]
    fn criticality_order_sorts_most_negative_first() {
        let slacks = [120.0, -450.0, 0.0, -450.0, f64::INFINITY];
        assert_eq!(criticality_order(&slacks), vec![1, 3, 2, 0, 4]);
        assert!(criticality_order(&[]).is_empty());
    }
}
