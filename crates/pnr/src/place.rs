//! Simulated-annealing placement.
//!
//! One engine serves both flows:
//! * the OOC flow places a single module inside a tight pblock
//!   ([`place_module`]),
//! * the monolithic baseline places the whole flat design across the chip
//!   (same entry point, region = full device),
//! * the assembled flow never calls this for locked instances — component-
//!   level placement is the stitcher's job — but
//!   [`place_design_instances`] exists to finalize any *unlocked* instances.
//!
//! Cost = Σ over nets of HPWL × timing weight; combinational nets weigh
//! more because every tile they stretch costs picoseconds on a critical
//! path. Moves are range-limited, with the window shrinking as the
//! temperature drops (classic VPR-style schedule).

use crate::PnrError;
use pi_fabric::{Device, Pblock, SiteKind, TileCoord};
use pi_netlist::{Design, Endpoint, Module};
use pi_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Placement options.
#[derive(Debug, Clone, Copy)]
pub struct PlaceOptions {
    /// RNG seed — same seed, same placement.
    pub seed: u64,
    /// Move budget multiplier. 1.0 is the default effort; the performance-
    /// exploration loop raises it for small OOC modules.
    pub effort: f64,
    /// Placement region; `None` means the full device (monolithic default).
    pub region: Option<Pblock>,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            effort: 1.0,
            region: None,
        }
    }
}

/// Statistics from one placement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaceStats {
    pub moves: u64,
    pub accepted: u64,
    pub initial_cost: f64,
    pub final_cost: f64,
}

/// Weight applied to nets with combinational endpoints: they shape the
/// critical path, so the annealer works harder on them.
const COMB_NET_WEIGHT: f64 = 2.5;

/// Cached bounding box of one net, with the number of endpoints lying on
/// each boundary. A move updates it in O(1): removing an endpoint from a
/// boundary whose count stays positive cannot shrink the box, and adding
/// one either extends a boundary or bumps its count. Only when the *last*
/// endpoint leaves a boundary does the box need a full endpoint rescan —
/// VPR's classic incremental-HPWL trick. The cost computed from the cache
/// is bit-identical to a rescan (pure u16 min/max), so placements do not
/// depend on which path ran.
#[derive(Clone, Copy)]
struct NetBox {
    cmin: u16,
    cmax: u16,
    rmin: u16,
    rmax: u16,
    n_cmin: u32,
    n_cmax: u32,
    n_rmin: u32,
    n_rmax: u32,
    empty: bool,
}

impl NetBox {
    fn compute(cells: &[usize], fixed: &[TileCoord], positions: &[Option<TileCoord>]) -> NetBox {
        let mut bb = NetBox {
            cmin: u16::MAX,
            cmax: 0,
            rmin: u16::MAX,
            rmax: 0,
            n_cmin: 0,
            n_cmax: 0,
            n_rmin: 0,
            n_rmax: 0,
            empty: true,
        };
        for &c in cells {
            bb.add(positions[c].expect("movable cells placed at init"));
        }
        for f in fixed {
            bb.add(*f);
        }
        bb
    }

    fn add(&mut self, at: TileCoord) {
        if self.empty {
            *self = NetBox {
                cmin: at.col,
                cmax: at.col,
                rmin: at.row,
                rmax: at.row,
                n_cmin: 1,
                n_cmax: 1,
                n_rmin: 1,
                n_rmax: 1,
                empty: false,
            };
            return;
        }
        if at.col < self.cmin {
            self.cmin = at.col;
            self.n_cmin = 1;
        } else if at.col == self.cmin {
            self.n_cmin += 1;
        }
        if at.col > self.cmax {
            self.cmax = at.col;
            self.n_cmax = 1;
        } else if at.col == self.cmax {
            self.n_cmax += 1;
        }
        if at.row < self.rmin {
            self.rmin = at.row;
            self.n_rmin = 1;
        } else if at.row == self.rmin {
            self.n_rmin += 1;
        }
        if at.row > self.rmax {
            self.rmax = at.row;
            self.n_rmax = 1;
        } else if at.row == self.rmax {
            self.n_rmax += 1;
        }
    }

    /// Remove an endpoint; returns true when a boundary lost its last
    /// endpoint, i.e. the box may shrink and must be recomputed.
    fn remove(&mut self, at: TileCoord) -> bool {
        let mut rescan = false;
        if at.col == self.cmin {
            self.n_cmin -= 1;
            rescan |= self.n_cmin == 0;
        }
        if at.col == self.cmax {
            self.n_cmax -= 1;
            rescan |= self.n_cmax == 0;
        }
        if at.row == self.rmin {
            self.n_rmin -= 1;
            rescan |= self.n_rmin == 0;
        }
        if at.row == self.rmax {
            self.n_rmax -= 1;
            rescan |= self.n_rmax == 0;
        }
        rescan
    }

    fn cost(&self, weight: f64) -> f64 {
        if self.empty {
            return 0.0;
        }
        weight * f64::from(self.cmax - self.cmin) + weight * f64::from(self.rmax - self.rmin)
    }
}

/// Base number of moves per cell; total budget is
/// `effort × MOVES_PER_CELL × n × ln(n)`.
const MOVES_PER_CELL: f64 = 24.0;

/// Hard cap on total annealing moves — the "default effort" ceiling a
/// vendor tool runs with. Very large monolithic designs hit this cap and
/// get proportionally less optimization per cell, which is exactly the
/// effect the paper exploits by pre-implementing small modules.
const MOVE_CAP: u64 = 40_000_000;

/// Place all movable cells of a module. Fixed cells keep their placement
/// and block their sites. Returns statistics for reports.
pub fn place_module(
    module: &mut Module,
    device: &Device,
    opts: &PlaceOptions,
) -> Result<PlaceStats, PnrError> {
    place_module_obs(module, device, opts, &Obs::null())
}

/// [`place_module`] with telemetry: emits one `anneal_round` point per
/// temperature step (cost, temperature, window, acceptance rate) under the
/// `pnr::place` scope.
pub fn place_module_obs(
    module: &mut Module,
    device: &Device,
    opts: &PlaceOptions,
    obs: &Obs,
) -> Result<PlaceStats, PnrError> {
    let obs = obs.scoped("pnr::place").with_seed(opts.seed);
    let region = opts.region.unwrap_or_else(|| device.full_pblock());
    region.validate(device)?;

    // Partition cells into fixed and movable, grouped by site kind.
    let n_cells = module.cells().len();
    let mut movable: Vec<usize> = Vec::with_capacity(n_cells);
    let mut occupied: HashMap<TileCoord, usize> = HashMap::with_capacity(n_cells);
    let mut positions: Vec<Option<TileCoord>> = vec![None; n_cells];
    for (i, cell) in module.cells().iter().enumerate() {
        if cell.fixed {
            let at = cell
                .placement
                .ok_or_else(|| PnrError::Unplaced(format!("fixed cell {}", cell.name)))?;
            occupied.insert(at, i);
            positions[i] = Some(at);
        } else {
            movable.push(i);
        }
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Free sites per kind inside the region.
    let mut free_sites: HashMap<SiteKind, Vec<TileCoord>> = HashMap::new();
    for kind in [
        SiteKind::Slice,
        SiteKind::Dsp48,
        SiteKind::Ramb36,
        SiteKind::Uram288,
        SiteKind::Iob,
    ] {
        let sites: Vec<TileCoord> = device
            .sites_in(&region, kind)
            .filter(|c| !occupied.contains_key(c))
            .collect();
        free_sites.insert(kind, sites);
    }
    // Iob cells may sit outside CLB-focused pblocks: fall back to the whole
    // device's IO columns for them.
    {
        let io_sites = free_sites.get_mut(&SiteKind::Iob).expect("inserted above");
        if io_sites.is_empty() {
            *io_sites = device
                .sites_in(&device.full_pblock(), SiteKind::Iob)
                .filter(|c| !occupied.contains_key(c))
                .collect();
        }
    }

    // Initial placement: random assignment per kind.
    let mut next_site: HashMap<SiteKind, usize> = HashMap::new();
    for kind in free_sites.keys() {
        next_site.insert(*kind, 0);
    }
    // Deterministic shuffle of each kind's site list. Iterate kinds in a
    // fixed order — HashMap iteration order would desynchronize the RNG
    // stream between otherwise identical runs.
    for kind in [
        SiteKind::Slice,
        SiteKind::Dsp48,
        SiteKind::Ramb36,
        SiteKind::Uram288,
        SiteKind::Iob,
    ] {
        let sites = free_sites.get_mut(&kind).expect("all kinds inserted");
        shuffle(sites, &mut rng);
    }
    let mut demand: HashMap<SiteKind, usize> = HashMap::new();
    for &i in &movable {
        *demand.entry(module.cells()[i].kind.site()).or_insert(0) += 1;
    }
    for (kind, need) in &demand {
        let have = free_sites[kind].len();
        if *need > have {
            return Err(PnrError::Unplaceable {
                kind: kind.short_name(),
                needed: *need,
                available: have,
            });
        }
    }
    for &i in &movable {
        let kind = module.cells()[i].kind.site();
        let cursor = next_site.get_mut(&kind).expect("all kinds initialized");
        let at = free_sites[&kind][*cursor];
        *cursor += 1;
        positions[i] = Some(at);
        occupied.insert(at, i);
    }

    // Net model: endpoints resolve to movable cells, fixed coordinates
    // (fixed cells, partition pins) or nothing (unplanned ports).
    #[derive(Clone)]
    struct PNet {
        cells: Vec<usize>,
        fixed: Vec<TileCoord>,
        weight: f64,
    }
    let mut pnets: Vec<PNet> = Vec::with_capacity(module.nets().len());
    let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
    for net in module.nets() {
        if net.is_clock {
            continue;
        }
        let mut p = PNet {
            cells: Vec::with_capacity(net.degree()),
            fixed: Vec::new(),
            weight: 1.0,
        };
        let mut comb = false;
        for e in net.endpoints() {
            match e {
                Endpoint::Cell(c) => {
                    let cell = &module.cells()[c.index()];
                    comb |= !cell.registered;
                    if cell.fixed {
                        p.fixed
                            .push(cell.placement.expect("fixed cells verified placed"));
                    } else {
                        p.cells.push(c.index());
                    }
                }
                Endpoint::Port(pid) => {
                    if let Some(pp) = module.ports()[pid.index()].partpin {
                        p.fixed.push(pp);
                    }
                }
            }
        }
        if p.cells.is_empty() {
            continue; // nothing movable on this net
        }
        if comb {
            p.weight = COMB_NET_WEIGHT;
        }
        let id = pnets.len() as u32;
        for &c in &p.cells {
            cell_nets[c].push(id);
        }
        pnets.push(p);
    }

    // Cached per-net bounding boxes: cost after a move is an incremental
    // update of the affected nets' boxes instead of a rescan of all their
    // endpoints (see [`NetBox`]).
    let mut boxes: Vec<NetBox> = pnets
        .iter()
        .map(|p| NetBox::compute(&p.cells, &p.fixed, &positions))
        .collect();
    let initial_cost: f64 = pnets
        .iter()
        .zip(&boxes)
        .map(|(p, bb)| bb.cost(p.weight))
        .sum();
    let mut stats = PlaceStats {
        initial_cost,
        final_cost: initial_cost,
        ..Default::default()
    };

    if movable.len() > 1 && !pnets.is_empty() {
        let n = movable.len() as f64;
        let budget =
            ((opts.effort * MOVES_PER_CELL * n * n.ln().max(1.0)) as u64).clamp(200, MOVE_CAP);
        let rounds = 48u64;
        let moves_per_round = (budget / rounds).max(1);
        let mut cost = initial_cost;
        let mut temp = (initial_cost / pnets.len() as f64).max(1.0);
        let span = u32::from(region.width()).max(u32::from(region.height()));
        // Move-loop scratch, reused so the hot path allocates nothing.
        let mut affected: Vec<u32> = Vec::new();
        let mut saved_boxes: Vec<NetBox> = Vec::new();

        let anneal_span = obs.span_with(
            "anneal",
            &[
                ("cells", movable.len().into()),
                ("nets", pnets.len().into()),
                ("rounds", rounds.into()),
                ("moves_per_round", moves_per_round.into()),
            ],
        );
        for round in 0..rounds {
            // Range limit shrinks geometrically with the round index.
            let frac = 1.0 - (round as f64 / rounds as f64);
            let window = ((f64::from(span) * frac * frac) as u32).max(3);
            let mut round_accepted = 0u64;
            for _ in 0..moves_per_round {
                stats.moves += 1;
                let &cell = &movable[rng.gen_range(0..movable.len())];
                let kind = module.cells()[cell].kind.site();
                let sites = &free_sites[&kind];
                if sites.len() < 2 {
                    continue;
                }
                let cur = positions[cell].expect("placed");
                // Propose a target *inside* the range window. Sampling the
                // window directly (instead of rejection-sampling the whole
                // region) keeps the proposal rate constant as the window
                // shrinks — otherwise fine-tuning rounds do nothing and
                // stretched nets survive to the critical path.
                let w = window as i32;
                let mut target = None;
                for _ in 0..8 {
                    let cand = match cur.translated(rng.gen_range(-w..=w), rng.gen_range(-w..=w)) {
                        Some(c) => c,
                        None => continue,
                    };
                    if cand == cur
                        || !region.contains(cand)
                        || device.tile_kind(cand).ok().and_then(|k| k.site()) != Some(kind)
                    {
                        continue;
                    }
                    target = Some(cand);
                    break;
                }
                let Some(target) = target else {
                    // Dense hard-block kinds can be sparse inside small
                    // windows; fall back to a random same-kind site.
                    continue;
                };
                let swap_with = occupied.get(&target).copied();
                if let Some(o) = swap_with {
                    if module.cells()[o].fixed {
                        continue;
                    }
                }

                // Cost of affected nets before, from the cached boxes.
                affected.clear();
                affected.extend_from_slice(&cell_nets[cell]);
                if let Some(o) = swap_with {
                    affected.extend_from_slice(&cell_nets[o]);
                }
                affected.sort_unstable();
                affected.dedup();
                let before: f64 = affected
                    .iter()
                    .map(|&ni| boxes[ni as usize].cost(pnets[ni as usize].weight))
                    .sum();
                saved_boxes.clear();
                saved_boxes.extend(affected.iter().map(|&ni| boxes[ni as usize]));

                // Apply, updating each affected box incrementally (rescan
                // only when a shrinking boundary loses its last endpoint).
                positions[cell] = Some(target);
                if let Some(o) = swap_with {
                    positions[o] = Some(cur);
                }
                for &ni in &affected {
                    let p = &pnets[ni as usize];
                    let bb = &mut boxes[ni as usize];
                    let mut stale = false;
                    for &c in &p.cells {
                        let (old, new) = if c == cell {
                            (cur, target)
                        } else if swap_with == Some(c) {
                            (target, cur)
                        } else {
                            continue;
                        };
                        if stale {
                            continue;
                        }
                        if bb.remove(old) {
                            stale = true;
                        } else {
                            bb.add(new);
                        }
                    }
                    if stale {
                        *bb = NetBox::compute(&p.cells, &p.fixed, &positions);
                    }
                }
                let after: f64 = affected
                    .iter()
                    .map(|&ni| boxes[ni as usize].cost(pnets[ni as usize].weight))
                    .sum();
                let delta = after - before;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
                if accept {
                    stats.accepted += 1;
                    round_accepted += 1;
                    cost += delta;
                    occupied.remove(&cur);
                    occupied.insert(target, cell);
                    if let Some(o) = swap_with {
                        occupied.insert(cur, o);
                    }
                } else {
                    // Revert positions and the cached boxes.
                    positions[cell] = Some(cur);
                    if let Some(o) = swap_with {
                        positions[o] = Some(target);
                    }
                    for (saved, &ni) in saved_boxes.iter().zip(&affected) {
                        boxes[ni as usize] = *saved;
                    }
                }
            }
            if obs.enabled() {
                obs.point(
                    "anneal_round",
                    &[
                        ("round", round.into()),
                        ("temp", temp.into()),
                        ("cost", cost.into()),
                        ("window", window.into()),
                        ("accepted", round_accepted.into()),
                        ("rejected", (moves_per_round - round_accepted).into()),
                        (
                            "accept_rate",
                            (round_accepted as f64 / moves_per_round as f64).into(),
                        ),
                    ],
                );
            }
            temp *= 0.82;
        }
        anneal_span.end();
        stats.final_cost = cost;
    }

    // Commit placements.
    for &i in &movable {
        module.set_placement(
            pi_netlist::CellId(i as u32),
            positions[i].expect("movable cells placed"),
        )?;
    }
    Ok(stats)
}

/// Place any unlocked instances of an assembled design (locked instances are
/// already placed by relocation). Each instance is placed inside its own
/// module pblock.
pub fn place_design_instances(
    design: &mut Design,
    device: &Device,
    opts: &PlaceOptions,
) -> Result<Vec<PlaceStats>, PnrError> {
    place_design_instances_obs(design, device, opts, &Obs::null())
}

/// [`place_design_instances`] with telemetry (see [`place_module_obs`]).
pub fn place_design_instances_obs(
    design: &mut Design,
    device: &Device,
    opts: &PlaceOptions,
    obs: &Obs,
) -> Result<Vec<PlaceStats>, PnrError> {
    let mut all = Vec::new();
    for inst in design.instances_mut() {
        if inst.module.locked {
            continue;
        }
        let region = inst.module.pblock.or(opts.region);
        let inst_opts = PlaceOptions { region, ..*opts };
        all.push(place_module_obs(&mut inst.module, device, &inst_opts, obs)?);
    }
    Ok(all)
}

/// Fisher–Yates with our seeded RNG (avoids pulling in rand's slice trait
/// for one call site).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::{Cell, CellKind, ModuleBuilder, StreamRole};

    fn chain_module(n: usize) -> Module {
        let mut b = ModuleBuilder::new("chain");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let ids: Vec<_> = (0..n)
            .map(|i| b.cell(Cell::new(format!("s{i}"), CellKind::full_slice())))
            .collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(ids[0])]);
        for i in 1..n {
            b.connect(
                format!("n{i}"),
                Endpoint::Cell(ids[i - 1]),
                [Endpoint::Cell(ids[i])],
            );
        }
        b.connect("out", Endpoint::Cell(ids[n - 1]), [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn places_all_cells_in_region() {
        let device = Device::test_part();
        let mut m = chain_module(30);
        let region = Pblock::new(1, 7, 0, 19);
        let opts = PlaceOptions {
            seed: 3,
            effort: 1.0,
            region: Some(region),
        };
        place_module(&mut m, &device, &opts).unwrap();
        assert!(m.fully_placed());
        for c in m.cells() {
            assert!(region.contains(c.placement.unwrap()), "{:?}", c.placement);
        }
        // No two cells share a site.
        let mut seen = std::collections::HashSet::new();
        for c in m.cells() {
            assert!(seen.insert(c.placement.unwrap()));
        }
    }

    #[test]
    fn annealing_reduces_wirelength() {
        let device = Device::test_part();
        let mut m = chain_module(60);
        let opts = PlaceOptions {
            seed: 11,
            effort: 2.0,
            region: None,
        };
        let stats = place_module(&mut m, &device, &opts).unwrap();
        assert!(
            stats.final_cost < stats.initial_cost,
            "no improvement: {} -> {}",
            stats.initial_cost,
            stats.final_cost
        );
        // A 60-cell chain placed well should have near-minimal wirelength:
        // each hop a few tiles at most on average.
        assert!(m.wirelength() < 60 * 6);
    }

    #[test]
    fn cached_cost_matches_rescan_after_annealing() {
        // `final_cost` is accumulated from incremental bbox deltas over
        // millions of moves; it must equal the HPWL cost recomputed from
        // the final placement. Any difference means the cached boxes
        // diverged from the positions (a stale-count or revert bug).
        let device = Device::test_part();
        let mut m = chain_module(50);
        let opts = PlaceOptions {
            seed: 23,
            effort: 1.5,
            region: None,
        };
        let stats = place_module(&mut m, &device, &opts).unwrap();
        let mut total = 0.0f64;
        for net in m.nets() {
            if net.is_clock {
                continue;
            }
            let mut pts: Vec<TileCoord> = Vec::new();
            let mut comb = false;
            let mut movable = false;
            for e in net.endpoints() {
                match e {
                    Endpoint::Cell(c) => {
                        let cell = &m.cells()[c.index()];
                        comb |= !cell.registered;
                        movable |= !cell.fixed;
                        pts.push(cell.placement.unwrap());
                    }
                    Endpoint::Port(p) => {
                        if let Some(pp) = m.ports()[p.index()].partpin {
                            pts.push(pp);
                        }
                    }
                }
            }
            if !movable || pts.is_empty() {
                continue;
            }
            let w = if comb { COMB_NET_WEIGHT } else { 1.0 };
            let (mut cmin, mut cmax, mut rmin, mut rmax) = (u16::MAX, 0u16, u16::MAX, 0u16);
            for p in &pts {
                cmin = cmin.min(p.col);
                cmax = cmax.max(p.col);
                rmin = rmin.min(p.row);
                rmax = rmax.max(p.row);
            }
            total += w * f64::from(cmax - cmin) + w * f64::from(rmax - rmin);
        }
        assert!(
            (stats.final_cost - total).abs() < 1e-6,
            "cached cost {} diverged from rescan {}",
            stats.final_cost,
            total
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let device = Device::test_part();
        let opts = PlaceOptions {
            seed: 42,
            effort: 1.0,
            region: None,
        };
        let mut a = chain_module(40);
        let mut b = chain_module(40);
        place_module(&mut a, &device, &opts).unwrap();
        place_module(&mut b, &device, &opts).unwrap();
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            assert_eq!(ca.placement, cb.placement);
        }
    }

    #[test]
    fn region_too_small_is_an_error() {
        let device = Device::test_part();
        let mut m = chain_module(100);
        let opts = PlaceOptions {
            seed: 1,
            effort: 1.0,
            region: Some(Pblock::new(1, 2, 0, 3)), // 8 slices for 100 cells
        };
        match place_module(&mut m, &device, &opts) {
            Err(PnrError::Unplaceable {
                needed, available, ..
            }) => {
                assert_eq!(needed, 100);
                assert!(available < 100);
            }
            other => panic!("expected Unplaceable, got {other:?}"),
        }
    }

    #[test]
    fn fixed_cells_do_not_move() {
        let device = Device::test_part();
        let mut m = chain_module(10);
        let at = TileCoord::new(3, 3);
        m.set_placement(pi_netlist::CellId(0), at).unwrap();
        m.cells_mut().unwrap()[0].fixed = true;
        place_module(&mut m, &device, &PlaceOptions::default()).unwrap();
        assert_eq!(m.cells()[0].placement, Some(at));
    }

    #[test]
    fn dsp_cells_land_on_dsp_columns() {
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("mix");
        let din = b.input("din", StreamRole::Source, 16);
        let s = b.cell(Cell::new("s", CellKind::full_slice()));
        let d = b.cell(Cell::new("d", CellKind::Dsp));
        let r = b.cell(Cell::new("r", CellKind::Bram));
        let dout = b.output("dout", StreamRole::Sink, 16);
        b.connect("a", Endpoint::Port(din), [Endpoint::Cell(s)]);
        b.connect("b", Endpoint::Cell(s), [Endpoint::Cell(d)]);
        b.connect("c", Endpoint::Cell(d), [Endpoint::Cell(r)]);
        b.connect("e", Endpoint::Cell(r), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        place_module(&mut m, &device, &PlaceOptions::default()).unwrap();
        let kind_at = |i: usize| {
            device
                .tile_kind(m.cells()[i].placement.unwrap())
                .unwrap()
                .site()
                .unwrap()
        };
        assert_eq!(kind_at(0), SiteKind::Slice);
        assert_eq!(kind_at(1), SiteKind::Dsp48);
        assert_eq!(kind_at(2), SiteKind::Ramb36);
    }
}
