//! The phased implementation flow: `opt_design` → `place_design` →
//! `phys_opt_design` → `route_design`, each phase wall-clock timed.
//!
//! These measured times are the productivity metric of the paper's Fig. 1a
//! and Fig. 6 — the baseline pays for all four phases on the whole design,
//! the pre-implemented flow only for inter-component routing.

use crate::place::{place_module_obs, PlaceOptions, PlaceStats};
use crate::power::{estimate, PowerReport};
use crate::route::{route_design_obs, route_module_obs, RouteOptions, RouteStats};
use crate::timing::{sta_design, sta_module, TimingReport};
use crate::PnrError;
use pi_fabric::TileCoord;
use pi_fabric::{Device, ResourceCount};
use pi_netlist::{CellId, Design, Module};
use pi_obs::Obs;
use std::time::{Duration, Instant};

/// Wall-clock duration of each phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    pub opt_design: Duration,
    pub place_design: Duration,
    pub phys_opt_design: Duration,
    pub route_design: Duration,
}

impl PhaseTimes {
    pub fn total(&self) -> Duration {
        self.opt_design + self.place_design + self.phys_opt_design + self.route_design
    }
}

/// Everything a compile run reports.
#[derive(Debug, Clone)]
pub struct CompileReport {
    pub design_name: String,
    pub device_name: String,
    pub phases: PhaseTimes,
    pub timing: TimingReport,
    pub resources: ResourceCount,
    pub power: PowerReport,
    pub place_stats: PlaceStats,
    pub route_stats: RouteStats,
    /// Wirelength of every routed net in the design, locked and new —
    /// `route_stats.wirelength` only counts nets routed in this run.
    pub total_wirelength: u64,
}

/// Options for a full compile.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    pub place: PlaceOptions,
    pub route: RouteOptions,
    /// phys_opt passes over the critical path (0 disables).
    pub phys_opt_passes: usize,
}

impl CompileOptions {
    pub fn with_seed(seed: u64) -> Self {
        CompileOptions {
            place: PlaceOptions {
                seed,
                ..Default::default()
            },
            route: RouteOptions::default(),
            phys_opt_passes: 2,
        }
    }
}

/// Full implementation of one module (the monolithic baseline path, and the
/// per-component OOC path).
pub fn compile_flat(
    module: &mut Module,
    device: &Device,
    opts: &CompileOptions,
) -> Result<CompileReport, PnrError> {
    compile_flat_obs(module, device, opts, &Obs::null())
}

/// [`compile_flat`] with telemetry: each phase runs inside a span under
/// `pnr::compile`, and every phys-opt pass emits the critical path it
/// started from (`pnr::timing`).
pub fn compile_flat_obs(
    module: &mut Module,
    device: &Device,
    opts: &CompileOptions,
    obs: &Obs,
) -> Result<CompileReport, PnrError> {
    let phases = obs.scoped("pnr::compile").with_seed(opts.place.seed);
    let timing_obs = obs.scoped("pnr::timing").with_seed(opts.place.seed);

    // opt_design: structural cleanup/verification sweep.
    let t0 = Instant::now();
    let span = phases.span("opt_design");
    module.validate()?;
    let resources = module.resources();
    span.end();
    let opt_time = t0.elapsed();

    // place_design.
    let t1 = Instant::now();
    let span = phases.span("place_design");
    let place_stats = place_module_obs(module, device, &opts.place, obs)?;
    span.end();
    let place_time = t1.elapsed();

    // phys_opt_design: greedy relocation of critical-path cells.
    let t2 = Instant::now();
    let span = phases.span_with(
        "phys_opt_design",
        &[("passes", opts.phys_opt_passes.into())],
    );
    for pass in 0..opts.phys_opt_passes {
        let (improved, before) = phys_opt_pass(module, device)?;
        if timing_obs.enabled() {
            timing_obs.point(
                "phys_opt_pass",
                &[
                    ("pass", pass.into()),
                    ("critical_path_ps", before.critical_path_ps.into()),
                    ("fmax_mhz", before.fmax_mhz.into()),
                    ("path_cells", before.worst_path.len().into()),
                    ("improved", improved.into()),
                ],
            );
        }
        if !improved {
            break;
        }
    }
    span.end();
    let phys_opt_time = t2.elapsed();

    // route_design.
    let t3 = Instant::now();
    let span = phases.span("route_design");
    let (route_stats, congestion) = route_module_obs(module, device, &opts.route, obs)?;
    span.end();
    let route_time = t3.elapsed();

    let timing = sta_module(module, device, Some(&congestion))?;
    if timing_obs.enabled() {
        timing_obs.point(
            "final_timing",
            &[
                ("critical_path_ps", timing.critical_path_ps.into()),
                ("fmax_mhz", timing.fmax_mhz.into()),
            ],
        );
    }
    let total_wirelength: u64 = module
        .nets()
        .iter()
        .filter_map(|n| n.route.as_ref())
        .map(|r| r.tiles.len() as u64)
        .sum();
    let power = estimate(&resources, total_wirelength, timing.fmax_mhz);

    Ok(CompileReport {
        design_name: module.name.clone(),
        device_name: device.name().to_string(),
        phases: PhaseTimes {
            opt_design: opt_time,
            place_design: place_time,
            phys_opt_design: phys_opt_time,
            route_design: route_time,
        },
        timing,
        resources,
        power,
        place_stats,
        route_stats,
        total_wirelength,
    })
}

/// Final inter-component routing + analysis of an assembled design: the only
/// implementation work the pre-implemented flow leaves for the backend.
pub fn route_assembled(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
) -> Result<CompileReport, PnrError> {
    route_assembled_obs(design, device, opts, &Obs::null())
}

/// [`route_assembled`] with telemetry (see [`compile_flat_obs`]).
pub fn route_assembled_obs(
    design: &mut Design,
    device: &Device,
    opts: &RouteOptions,
    obs: &Obs,
) -> Result<CompileReport, PnrError> {
    let phases = obs.scoped("pnr::compile");
    let timing_obs = obs.scoped("pnr::timing");

    let t0 = Instant::now();
    let span = phases.span("opt_design");
    design.validate()?;
    let resources = design.resources();
    span.end();
    let opt_time = t0.elapsed();

    let t1 = Instant::now();
    let span = phases.span("route_design");
    let (route_stats, congestion) = route_design_obs(design, device, opts, obs)?;
    span.end();
    let route_time = t1.elapsed();

    let timing = sta_design(design, device, Some(&congestion))?;
    if timing_obs.enabled() {
        timing_obs.point(
            "final_timing",
            &[
                ("critical_path_ps", timing.critical_path_ps.into()),
                ("fmax_mhz", timing.fmax_mhz.into()),
            ],
        );
    }
    // Wirelength of the whole design: locked routes plus the new ones.
    let total_wl: u64 = design
        .instances()
        .iter()
        .flat_map(|i| i.module.nets())
        .filter_map(|n| n.route.as_ref())
        .map(|r| r.tiles.len() as u64)
        .sum::<u64>()
        + design
            .top_nets()
            .iter()
            .filter_map(|n| n.route.as_ref())
            .map(|r| r.tiles.len() as u64)
            .sum::<u64>();
    let power = estimate(&resources, total_wl, timing.fmax_mhz);

    Ok(CompileReport {
        design_name: design.name.clone(),
        device_name: device.name().to_string(),
        phases: PhaseTimes {
            opt_design: opt_time,
            place_design: Duration::ZERO,
            phys_opt_design: Duration::ZERO,
            route_design: route_time,
        },
        timing,
        resources,
        power,
        place_stats: PlaceStats::default(),
        route_stats,
        total_wirelength: total_wl,
    })
}

/// One phys_opt pass: try to shorten the wires feeding the worst path by
/// moving its movable cells toward the centroid of their neighbours.
/// Returns whether anything improved, plus the timing report the pass
/// started from (the critical path it worked on).
fn phys_opt_pass(module: &mut Module, device: &Device) -> Result<(bool, TimingReport), PnrError> {
    let report = sta_module(module, device, None)?;
    if report.worst_path.len() < 2 {
        return Ok((false, report));
    }
    // Map path names back to cell indices.
    let mut path_cells: Vec<usize> = Vec::new();
    for name in &report.worst_path {
        if let Some(i) = module.cells().iter().position(|c| &c.name == name) {
            path_cells.push(i);
        }
    }
    // Occupancy of all placed cells.
    let mut occupied: std::collections::HashMap<TileCoord, usize> = module
        .cells()
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.placement.map(|p| (p, i)))
        .collect();

    // Neighbour coordinates per cell on the path (from its nets).
    let mut improved = false;
    for &ci in &path_cells {
        if module.cells()[ci].fixed {
            continue;
        }
        let Some(cur) = module.cells()[ci].placement else {
            continue;
        };
        let kind = module.cells()[ci].kind.site();
        // Gather this cell's net neighbours.
        let mut neighbours: Vec<TileCoord> = Vec::new();
        for net in module.nets() {
            if net.is_clock {
                continue;
            }
            let on_net = net
                .endpoints()
                .any(|e| matches!(e, pi_netlist::Endpoint::Cell(c) if c.index() == ci));
            if !on_net {
                continue;
            }
            for e in net.endpoints() {
                if let pi_netlist::Endpoint::Cell(c) = e {
                    if c.index() != ci {
                        if let Some(p) = module.cells()[c.index()].placement {
                            neighbours.push(p);
                        }
                    }
                }
            }
        }
        if neighbours.is_empty() {
            continue;
        }
        // Squared distance: unlike plain wirelength (which is constant
        // anywhere on the line between two neighbours — the plateau that
        // lets the annealer leave one long hop), it is minimized at the
        // centroid and therefore splits long hops evenly.
        let cost = |at: TileCoord| -> u64 {
            neighbours
                .iter()
                .map(|n| {
                    let d = u64::from(n.manhattan(&at));
                    d * d
                })
                .sum()
        };
        let cur_cost = cost(cur);
        // Try free same-kind sites around the neighbour centroid (a direct
        // jump) and around the current position (local slide).
        let centroid = TileCoord::new(
            (neighbours.iter().map(|n| u64::from(n.col)).sum::<u64>() / neighbours.len() as u64)
                as u16,
            (neighbours.iter().map(|n| u64::from(n.row)).sum::<u64>() / neighbours.len() as u64)
                as u16,
        );
        let mut best: Option<(u64, TileCoord)> = None;
        for center in [centroid, cur] {
            for dc in -8i32..=8 {
                for dr in -8i32..=8 {
                    let Some(cand) = center.translated(dc, dr) else {
                        continue;
                    };
                    if cand == cur || !device.in_bounds(cand) || occupied.contains_key(&cand) {
                        continue;
                    }
                    if device.tile_kind(cand)?.site() != Some(kind) {
                        continue;
                    }
                    let c = cost(cand);
                    if c < cur_cost && best.map(|(bc, _)| c < bc).unwrap_or(true) {
                        best = Some((c, cand));
                    }
                }
            }
        }
        if let Some((_, target)) = best {
            occupied.remove(&cur);
            occupied.insert(target, ci);
            module.set_placement(CellId(ci as u32), target)?;
            improved = true;
        }
    }
    Ok((improved, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlaceOptions;
    use pi_netlist::{Cell, CellKind, Endpoint, ModuleBuilder, StreamRole};

    fn comb_chain(n: usize) -> Module {
        let mut b = ModuleBuilder::new("cc");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let head = b.cell(Cell::new("head", CellKind::full_slice()));
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(head)]);
        let mut prev = head;
        for i in 0..n {
            let c = b.cell(
                Cell::new(format!("k{i}"), CellKind::full_slice())
                    .combinational()
                    .with_delay_ps(250),
            );
            b.connect(format!("n{i}"), Endpoint::Cell(prev), [Endpoint::Cell(c)]);
            prev = c;
        }
        let tail = b.cell(Cell::new("tail", CellKind::full_slice()));
        b.connect("nt", Endpoint::Cell(prev), [Endpoint::Cell(tail)]);
        b.connect("out", Endpoint::Cell(tail), [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn full_compile_produces_complete_report() {
        let device = Device::test_part();
        let mut m = comb_chain(4);
        let report = compile_flat(&mut m, &device, &CompileOptions::with_seed(5)).unwrap();
        assert!(report.timing.fmax_mhz > 50.0);
        assert!(report.route_stats.overused_tiles == 0);
        assert!(report.power.total_mw() > 0.0);
        assert!(report.phases.total() > Duration::ZERO);
        assert!(m.fully_placed());
        assert!(m.fully_routed());
    }

    #[test]
    fn phys_opt_does_not_hurt_fmax() {
        let device = Device::test_part();
        let mut a = comb_chain(6);
        let mut b_m = comb_chain(6);
        let no_opt = CompileOptions {
            place: PlaceOptions {
                seed: 9,
                effort: 0.3,
                region: None,
            },
            route: RouteOptions::default(),
            phys_opt_passes: 0,
        };
        let with_opt = CompileOptions {
            phys_opt_passes: 4,
            ..no_opt
        };
        let ra = compile_flat(&mut a, &device, &no_opt).unwrap();
        let rb = compile_flat(&mut b_m, &device, &with_opt).unwrap();
        assert!(rb.timing.fmax_mhz >= ra.timing.fmax_mhz * 0.99);
    }

    #[test]
    fn assembled_routing_reports_only_route_phase() {
        let device = Device::test_part();
        let mut m = comb_chain(3);
        let _ = compile_flat(&mut m, &device, &CompileOptions::with_seed(2)).unwrap();
        m.lock();
        let mut d = Design::new("asm", "test-part", pi_netlist::DesignKind::Assembled);
        d.add_instance("a", m);
        let report = route_assembled(&mut d, &device, &RouteOptions::default()).unwrap();
        assert_eq!(report.phases.place_design, Duration::ZERO);
        assert!(report.timing.fmax_mhz > 50.0);
    }
}
