//! The daemon: accept loop, worker pool, endpoints.
//!
//! One thread accepts connections and hands each to a short-lived handler
//! thread (requests are tiny; the expensive work never happens on a
//! connection thread). `workers` long-lived worker threads block on the
//! job queue and run the flow — component builds go through
//! [`pi_flow::build_component_db_cached`] against the daemon's `db_dir`,
//! so every job shares one cache tier and the advisory manifest lock
//! keeps concurrent workers (and unrelated local processes) coherent.
//!
//! Endpoints (JSON in, JSON out, one request per connection):
//!
//! | method & path        | reply |
//! |----------------------|-------|
//! | `POST /submit`       | `{job_id, status}` with status `queued`/`coalesced`/`done`; `400` on a bad payload, `503` when the queue is full |
//! | `GET /status/<id>`   | `{job_id, status}`; `404` unknown |
//! | `GET /result/<id>`   | the stored [`JobResult`] JSON (byte-identical for every reader); `202` while queued/running, `500` if the job failed, `404` unknown |
//! | `GET /stats`         | queue + shared-cache counters |
//! | `GET /trace/<id>`    | the job's tagged JSONL event stream (timestamp-stripped, persisted next to the result); `202` while queued/running, `500` if the job failed, `404` unknown |
//! | `GET /metrics`       | Prometheus text exposition from the daemon's [`pi_obs::registry::Registry`]: queue depth, jobs by state, coalesced/rejected counts, shared-cache counters, per-command wallclock histograms, uptime |
//! | `GET /healthz`       | `{ok: true, version, uptime_seconds}` |
//! | `POST /shutdown`     | `{ok: true}`, then the daemon drains and exits |
//!
//! Telemetry: each finished request emits one `serve::request` point on
//! the daemon's sink — cache hits/misses/evictions as deterministic
//! fields, latency as a `wallclock_ms` field (aggregated by `flowstat
//! summarize --wallclock`, excluded from deterministic diffs). Each job's
//! captured event stream is additionally re-emitted under a
//! `serve::job:run` span (tagged with the job ID and, when the client
//! sent a [`TraceContext`](crate::job::TraceContext), its trace identity)
//! and stored for `GET /trace/<id>` — the raw stream a client splices
//! under its own `serve:request` span for one cross-process call tree.

use crate::job::{JobCommand, JobResult, JobSpec};
use crate::protocol::{read_request, write_response, Request};
use crate::queue::{JobQueue, Submit};
use crate::ServeError;
use pi_fabric::Device;
use pi_flow::{build_component_db_cached, run_pre_implemented_flow, DbCacheStats};
use pi_obs::registry::Registry;
use pi_obs::{MemorySink, Obs};
use serde_json::Value;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Shared component-database cache root. Job-supplied `db_dir`s are
    /// overridden with this (the daemon owns the cache tier); `None`
    /// serves every job cold, in memory.
    pub db_dir: Option<PathBuf>,
    /// Byte budget for the shared cache (LRU eviction beyond it).
    pub db_budget_bytes: Option<u64>,
    /// Worker threads pulling jobs off the queue (concurrent builds).
    pub workers: usize,
    /// Bound on pending jobs; submissions beyond it get `503`.
    pub queue_capacity: usize,
    /// Daemon telemetry sink (per-request points; job runs capture their
    /// own streams independently).
    pub obs: Obs,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            db_dir: None,
            db_budget_bytes: None,
            workers: 1,
            queue_capacity: 64,
            obs: Obs::null(),
        }
    }
}

/// Shared-cache counters folded across every job the daemon ran.
#[derive(Default)]
struct DbTotals {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    bytes_loaded: AtomicU64,
    cold_builds: AtomicU64,
}

struct ServerState {
    queue: JobQueue,
    options: ServerOptions,
    addr: SocketAddr,
    stop: AtomicBool,
    db: DbTotals,
    /// Live metric registry behind `GET /metrics` (uptime epoch included).
    registry: Registry,
}

/// A running daemon (see [`serve`]). Join it to block until shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Block until the daemon shuts down (via `POST /shutdown` or
    /// [`ServerHandle::shutdown`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Ask the daemon to drain and exit without going over HTTP.
    pub fn shutdown(&self) {
        request_stop(&self.state);
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start the
/// daemon: one accept thread plus `options.workers` worker threads.
pub fn serve(addr: &str, options: ServerOptions) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        queue: JobQueue::new(options.queue_capacity),
        options,
        addr,
        stop: AtomicBool::new(false),
        db: DbTotals::default(),
        registry: Registry::new(),
    });
    let mut threads = Vec::new();
    for _ in 0..state.options.workers.max(1) {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || worker_loop(&st)));
    }
    {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || accept_loop(listener, &st)));
    }
    Ok(ServerHandle {
        addr,
        threads,
        state,
    })
}

fn request_stop(state: &ServerState) {
    state.stop.store(true, Ordering::SeqCst);
    state.queue.stop();
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(state.addr);
}

fn accept_loop(listener: TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let st = Arc::clone(state);
        std::thread::spawn(move || handle_conn(stream, &st));
    }
}

fn handle_conn(mut stream: TcpStream, state: &Arc<ServerState>) {
    let (status, body, shutdown) = match read_request(&stream) {
        Ok(req) => route(&req, state),
        Err(e) => (400, err_json(&e.to_string()), false),
    };
    let _ = write_response(&mut stream, status, &body);
    if shutdown {
        request_stop(state);
    }
}

/// Dispatch one request; returns `(status, body, shutdown)`.
fn route(req: &Request, state: &ServerState) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => {
            let spec = match JobSpec::from_json(&req.body) {
                Ok(s) => s,
                Err(e) => return (400, err_json(&e), false),
            };
            let spec = spec.normalized(
                state.options.db_dir.as_deref(),
                state.options.db_budget_bytes,
            );
            match state.queue.submit(spec) {
                Submit::Queued(id) => (200, ack_json(&id, "queued"), false),
                Submit::Coalesced(id) => (200, ack_json(&id, "coalesced"), false),
                Submit::Done(id) => (200, ack_json(&id, "done"), false),
                Submit::Busy => (503, err_json("queue full"), false),
            }
        }
        ("GET", path) if path.starts_with("/status/") => {
            let id = &path["/status/".len()..];
            match state.queue.status(id) {
                Some(s) => (200, ack_json(id, s.as_str()), false),
                None => (404, err_json("unknown job"), false),
            }
        }
        ("GET", path) if path.starts_with("/result/") => {
            let id = &path["/result/".len()..];
            match state.queue.outcome(id) {
                Some(Ok(result)) => (200, result, false),
                Some(Err(e)) => (500, err_json(&e), false),
                None => match state.queue.status(id) {
                    Some(s) => (202, ack_json(id, s.as_str()), false),
                    None => (404, err_json("unknown job"), false),
                },
            }
        }
        ("GET", path) if path.starts_with("/trace/") => {
            let id = &path["/trace/".len()..];
            match state.queue.trace(id) {
                Some(Some(trace)) => (200, trace, false),
                Some(None) => match state.queue.status(id) {
                    Some(crate::job::JobStatus::Failed) => {
                        (500, err_json("job failed; no trace stored"), false)
                    }
                    Some(s) => (202, ack_json(id, s.as_str()), false),
                    None => (404, err_json("unknown job"), false),
                },
                None => (404, err_json("unknown job"), false),
            }
        }
        ("GET", "/stats") => (200, stats_json(state), false),
        ("GET", "/metrics") => (200, metrics_text(state), false),
        ("GET", "/healthz") => (200, health_json(state), false),
        ("POST", "/shutdown") => (200, "{\"ok\":true}".to_string(), true),
        _ => (404, err_json("no such endpoint"), false),
    }
}

/// Liveness body: `ok` plus crate version and uptime. Both extra fields
/// are wall-clock/build facts — nothing downstream may diff them.
fn health_json(state: &ServerState) -> String {
    format!(
        "{{\"ok\":true,\"version\":\"{}\",\"uptime_seconds\":{}}}",
        env!("CARGO_PKG_VERSION"),
        state.registry.uptime_seconds()
    )
}

/// `GET /metrics`: mirror the authoritative queue and shared-cache
/// counters into the registry at scrape time (one source of truth — the
/// workers only feed the histograms), then render the Prometheus text.
fn metrics_text(state: &ServerState) -> String {
    let q = state.queue.stats();
    let r = &state.registry;
    r.gauge_set("pi_serve_queue_depth", q.queued_now as f64);
    r.gauge_set("pi_serve_jobs_running", q.running_now as f64);
    r.counter_set("pi_serve_jobs_submitted_total", q.submitted);
    r.counter_set("pi_serve_jobs_unique_total", q.unique);
    r.counter_set("pi_serve_jobs_coalesced_total", q.hits);
    r.counter_set("pi_serve_jobs_rejected_total", q.rejected);
    r.counter_set("pi_serve_jobs_completed_total", q.completed);
    r.counter_set("pi_serve_jobs_failed_total", q.failed);
    r.counter_set(
        "pi_serve_db_cache_hits_total",
        state.db.hits.load(Ordering::SeqCst),
    );
    r.counter_set(
        "pi_serve_db_cache_misses_total",
        state.db.misses.load(Ordering::SeqCst),
    );
    r.counter_set(
        "pi_serve_db_cache_invalidations_total",
        state.db.invalidations.load(Ordering::SeqCst),
    );
    r.counter_set(
        "pi_serve_db_cache_evictions_total",
        state.db.evictions.load(Ordering::SeqCst),
    );
    r.counter_set(
        "pi_serve_db_cache_bytes_loaded_total",
        state.db.bytes_loaded.load(Ordering::SeqCst),
    );
    r.counter_set(
        "pi_serve_db_cold_builds_total",
        state.db.cold_builds.load(Ordering::SeqCst),
    );
    r.gauge_set("pi_serve_workers", state.options.workers.max(1) as f64);
    r.render_prometheus()
}

fn err_json(message: &str) -> String {
    let mut m = Value::Map(Vec::new());
    m["error"] = Value::Str(message.to_string());
    serde_json::to_string(&m).expect("error serializes")
}

fn ack_json(job_id: &str, status: &str) -> String {
    let mut m = Value::Map(Vec::new());
    m["job_id"] = Value::Str(job_id.to_string());
    m["status"] = Value::Str(status.to_string());
    serde_json::to_string(&m).expect("ack serializes")
}

fn stats_json(state: &ServerState) -> String {
    let q = state.queue.stats();
    let mut queue = Value::Map(Vec::new());
    queue["submitted"] = Value::U64(q.submitted);
    queue["unique"] = Value::U64(q.unique);
    queue["hits"] = Value::U64(q.hits);
    queue["rejected"] = Value::U64(q.rejected);
    queue["completed"] = Value::U64(q.completed);
    queue["failed"] = Value::U64(q.failed);
    queue["queued_now"] = Value::U64(q.queued_now);
    queue["running_now"] = Value::U64(q.running_now);
    let mut db = Value::Map(Vec::new());
    db["hits"] = Value::U64(state.db.hits.load(Ordering::SeqCst));
    db["misses"] = Value::U64(state.db.misses.load(Ordering::SeqCst));
    db["invalidations"] = Value::U64(state.db.invalidations.load(Ordering::SeqCst));
    db["evictions"] = Value::U64(state.db.evictions.load(Ordering::SeqCst));
    db["bytes_loaded"] = Value::U64(state.db.bytes_loaded.load(Ordering::SeqCst));
    db["cold_builds"] = Value::U64(state.db.cold_builds.load(Ordering::SeqCst));
    let mut m = Value::Map(Vec::new());
    m["queue"] = queue;
    m["db"] = db;
    m["workers"] = Value::U64(state.options.workers.max(1) as u64);
    m["db_dir"] = match &state.options.db_dir {
        Some(p) => Value::Str(p.to_string_lossy().into_owned()),
        None => Value::Null,
    };
    serde_json::to_string(&m).expect("stats serialize")
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some((id, spec)) = state.queue.next_job() {
        let started = Instant::now();
        let outcome = run_job(&id, &spec);
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let req_obs = state.options.obs.scoped("serve").subscoped("request");
        state.registry.observe(
            &format!("pi_serve_job_wall_ms_{}", spec.command.as_str()),
            wall_ms,
        );
        match outcome {
            Ok((result, tagged_trace)) => {
                fold_db(&state.db, &result.cache);
                if req_obs.enabled() {
                    req_obs.point(
                        "done",
                        &[
                            ("job", id.as_str().into()),
                            ("outcome", "ok".into()),
                            ("cache_hits", (result.cache.hits as u64).into()),
                            ("cache_misses", (result.cache.misses as u64).into()),
                            (
                                "cache_invalidations",
                                (result.cache.invalidations as u64).into(),
                            ),
                            ("cache_evictions", result.cache.evictions.into()),
                            ("cache_bytes_loaded", result.cache.bytes_loaded.into()),
                            ("wallclock_ms", wall_ms.into()),
                        ],
                    );
                }
                state
                    .queue
                    .complete_with_trace(&id, Ok(result.to_json()), Some(tagged_trace));
            }
            Err(e) => {
                if req_obs.enabled() {
                    req_obs.point(
                        "done",
                        &[
                            ("job", id.as_str().into()),
                            ("outcome", "error".into()),
                            ("wallclock_ms", wall_ms.into()),
                        ],
                    );
                }
                state.queue.complete(&id, Err(e));
            }
        }
    }
}

fn fold_db(totals: &DbTotals, stats: &DbCacheStats) {
    totals.hits.fetch_add(stats.hits as u64, Ordering::SeqCst);
    totals
        .misses
        .fetch_add(stats.misses as u64, Ordering::SeqCst);
    totals
        .invalidations
        .fetch_add(stats.invalidations as u64, Ordering::SeqCst);
    totals
        .evictions
        .fetch_add(stats.evictions, Ordering::SeqCst);
    totals
        .bytes_loaded
        .fetch_add(stats.bytes_loaded, Ordering::SeqCst);
    if stats.misses > 0 {
        totals.cold_builds.fetch_add(1, Ordering::SeqCst);
    }
}

/// Re-emit a job's captured events wrapped in a `serve::job:run` span
/// tagged with the job ID and, when present, the client's trace context.
/// The result is the timestamp-stripped JSONL served by `GET /trace/<id>`
/// — deterministic for a given (spec, trace context), so re-running a job
/// stores byte-identical trace bytes.
fn tagged_trace_jsonl(id: &str, spec: &JobSpec, events: Vec<pi_obs::Event>) -> String {
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::new(sink.clone());
    let job_obs = obs.scoped("serve::job");
    let mut fields: Vec<(&str, pi_obs::Value)> = vec![("job", id.into())];
    if let Some(t) = &spec.trace {
        fields.push(("trace_id", t.trace_id.as_str().into()));
        fields.push(("parent_span", t.parent_span.as_str().into()));
    }
    let span = job_obs.span_with("run", &fields);
    obs.replay(events);
    span.end();
    sink.stripped_jsonl()
}

/// Run one job to a [`JobResult`] plus its tagged trace stream. Every
/// failure becomes a message the client can read — a broken archdef must
/// 500 its job, never kill a worker.
fn run_job(id: &str, spec: &JobSpec) -> Result<(JobResult, String), String> {
    let network = match spec.format {
        pi_model::ModelFormat::Archdef => {
            pi_cnn::parse_archdef(&spec.archdef).map_err(|e| e.to_string())?
        }
        format => {
            pi_model::import(&spec.archdef, format)
                .map_err(|e| e.to_string())?
                .network
        }
    };
    let device = Device::catalog(&spec.device).map_err(|e| e.to_string())?;
    // Capture the run's own telemetry; the stripped JSONL goes back to
    // the client for flowstat comparison against local runs.
    let cfg = spec.config.clone().with_report_capture();
    let (db, _reports, stats) =
        build_component_db_cached(&network, &device, &cfg).map_err(|e| e.to_string())?;
    let summary = match spec.command {
        JobCommand::BuildDb => {
            format!("pre-implemented {}: {} checkpoints", network.name, db.len())
        }
        JobCommand::Compose => {
            let (design, report) = run_pre_implemented_flow(&network, &db, &device, &cfg)
                .map_err(|e| e.to_string())?;
            format!(
                "assembled {}: Fmax {:.0} MHz, pipeline {:.0} ns, frame {:.3} ms, \
                 {} stitched nets",
                design.name,
                report.compile.timing.fmax_mhz,
                report.latency.pipeline_ns,
                report.latency.frame_ms,
                report.compose.stitched_nets,
            )
        }
    };
    let trace_jsonl: String = cfg
        .captured_events()
        .iter()
        .map(|e| serde_json::to_string(&e.to_json(false)).expect("event serializes") + "\n")
        .collect();
    let report_text = cfg
        .run_report()
        .map(|r| r.render_text())
        .unwrap_or_default();
    let tagged = tagged_trace_jsonl(id, spec, cfg.captured_events());
    Ok((
        JobResult {
            job_id: id.to_string(),
            summary,
            trace_jsonl,
            report_text,
            cache: stats,
        },
        tagged,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::http_call;

    fn start() -> ServerHandle {
        serve("127.0.0.1:0", ServerOptions::default()).expect("bind ephemeral")
    }

    #[test]
    fn health_unknown_and_bad_submit() {
        let h = start();
        let addr = h.addr();
        let (status, body) = http_call(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"ok\":true,"), "{body}");
        assert!(
            body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
            "{body}"
        );
        assert!(body.contains("\"uptime_seconds\":"), "{body}");
        let (status, _) = http_call(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_call(&addr, "GET", "/trace/ffff", "").unwrap();
        assert_eq!(status, 404);
        let (status, body) = http_call(&addr, "POST", "/submit", "not json").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        let (status, _) = http_call(&addr, "GET", "/status/ffff", "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_call(&addr, "POST", "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        h.join();
    }

    #[test]
    fn submit_runs_a_tiny_job_to_done() {
        let h = start();
        let addr = h.addr();
        let spec = JobSpec::new(
            "network tiny\ninput 1x8x8\nconv c1 kernel=3 out=2\n",
            "test-part",
            pi_flow::FlowConfig::new().with_seeds([1]),
        );
        let (status, body) = http_call(&addr, "POST", "/submit", &spec.to_json()).unwrap();
        assert_eq!(status, 200, "{body}");
        let normalized_id = spec.clone().normalized(None, None).job_id();
        assert!(body.contains(&normalized_id), "{body}");
        // Poll to completion.
        let result = loop {
            let (status, body) =
                http_call(&addr, "GET", &format!("/result/{normalized_id}"), "").unwrap();
            match status {
                200 => break JobResult::from_json(&body).unwrap(),
                202 => std::thread::sleep(std::time::Duration::from_millis(10)),
                other => panic!("unexpected status {other}: {body}"),
            }
        };
        assert!(
            result.summary.starts_with("assembled tiny"),
            "{}",
            result.summary
        );
        assert!(!result.trace_jsonl.is_empty());
        assert_eq!(result.cache.hits, 0, "no cache tier configured");
        let (status, stats) = http_call(&addr, "GET", "/stats", "").unwrap();
        assert_eq!(status, 200);
        assert!(stats.contains("\"completed\":1"), "{stats}");
        // The tagged trace is stored next to the result: parseable JSONL
        // wrapped in a serve::job span carrying the job ID.
        let (status, trace) =
            http_call(&addr, "GET", &format!("/trace/{normalized_id}"), "").unwrap();
        assert_eq!(status, 200);
        let events = pi_obs::parse_jsonl(&trace).expect("trace parses");
        assert_eq!(events.first().map(|e| e.scope.as_str()), Some("serve::job"));
        assert_eq!(events.last().map(|e| e.name.as_str()), Some("run"));
        assert!(trace.contains(&normalized_id));
        // Live metrics reflect the finished job.
        let (status, metrics) = http_call(&addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("pi_serve_jobs_completed_total 1\n"),
            "{metrics}"
        );
        assert!(metrics.contains("# TYPE pi_serve_job_wall_ms_compose histogram"));
        assert!(metrics.contains("uptime_seconds"));
        let (_, _) = http_call(&addr, "POST", "/shutdown", "").unwrap();
        h.join();
    }
}
