//! The compile-farm daemon: share one component-database cache between
//! many clients.
//!
//! The paper's pitch is that function optimization is done *once* and
//! every later accelerator composes pre-implemented checkpoints. A
//! persistent `--db-dir` makes that true across runs on one machine;
//! `pi-serve` makes it true across *clients*: a daemon owns the cache
//! tier, clients POST compile jobs (archdef + serialized [`FlowConfig`]
//! — the wire format of `pi_flow::config_json`), and the daemon schedules
//! them across a bounded job queue and worker pool, running
//! [`pi_flow::build_component_db_cached`] against the shared cache. The
//! cross-process manifest lock ([`pi_stitch::LockFile`]) keeps the cache
//! coherent even when other local processes use the same directory.
//!
//! The moving parts:
//!
//! * [`protocol`] — the hand-rolled line-oriented HTTP/1.1 subset both
//!   sides speak (std-only; no external HTTP stack).
//! * [`job`] — [`JobSpec`] (what a client submits, with its
//!   deterministic content-hash [`JobSpec::job_id`]) and [`JobResult`]
//!   (what the daemon returns: deterministic summary, stripped JSONL
//!   trace, cache counters).
//! * [`queue`] — the bounded, coalescing job queue: identical concurrent
//!   submissions collapse onto one build, later ones are served the
//!   stored result byte-for-byte.
//! * [`server`] — the TCP daemon: accept loop, worker threads, the
//!   `submit`/`status`/`result`/`trace`/`stats`/`metrics`/`healthz`/
//!   `shutdown` endpoints, per-request telemetry folded into `flowstat`
//!   via [`pi_obs`] and live counters/histograms exposed as Prometheus
//!   text through [`pi_obs::registry`].
//! * [`client`] — the blocking client the `preimpl --remote` path and
//!   the `pi-serve` CLI subcommands use, including
//!   [`submit_and_wait_traced`] which splices the daemon's tagged span
//!   tree under a local `serve:request` span for unified reports.
//!
//! [`FlowConfig`]: pi_flow::FlowConfig

pub mod client;
pub mod job;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{submit_and_wait, submit_and_wait_traced, RemoteError};
pub use job::{JobCommand, JobResult, JobSpec, JobStatus, TraceContext};
pub use queue::{JobQueue, QueueStats, Submit};
pub use server::{serve, ServerHandle, ServerOptions};

/// Errors from the serve layer (daemon side and transport).
#[derive(Debug)]
pub enum ServeError {
    /// Socket/file-descriptor failure.
    Io(std::io::Error),
    /// A malformed request or response on the wire.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve io: {e}"),
            ServeError::Protocol(m) => write!(f, "serve protocol: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
