//! The bounded, coalescing job queue.
//!
//! Jobs are keyed by their deterministic [`JobSpec::job_id`], which gives
//! coalescing for free: a submission whose ID is already queued, running
//! or done never enqueues a second build — it attaches to the in-flight
//! job (or is served the stored result) and is counted as a hit. The
//! pending queue is bounded; a submission that would grow it past
//! capacity is rejected ([`Submit::Busy`] → HTTP 503) instead of letting
//! a burst of distinct jobs grow daemon memory without limit.
//!
//! Workers block on [`JobQueue::next_job`] (condvar, no spinning) and the
//! queue never loses a completion: results are stored as the exact JSON
//! string every later `/result` read returns byte-for-byte.

use crate::job::{JobSpec, JobStatus};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submit {
    /// New work: enqueued for a worker.
    Queued(String),
    /// Identical job already queued or running — attached to it.
    Coalesced(String),
    /// Identical job already finished — result available immediately.
    Done(String),
    /// The pending queue is at capacity.
    Busy,
}

/// Counters the `/stats` endpoint reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total `/submit` requests accepted (including coalesced ones).
    pub submitted: u64,
    /// Jobs actually enqueued (unique work).
    pub unique: u64,
    /// Submissions that coalesced onto queued/running/finished jobs —
    /// the farm-level cache hits.
    pub hits: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs whose run failed.
    pub failed: u64,
    /// Jobs waiting for a worker right now.
    pub queued_now: u64,
    /// Jobs being built right now.
    pub running_now: u64,
}

struct JobEntry {
    spec: Option<JobSpec>,
    status: JobStatus,
    /// `Ok(result json)` or `Err(error message)`, set on completion.
    outcome: Option<Result<String, String>>,
    /// Tagged JSONL event stream of the run, persisted next to the stored
    /// result and served verbatim by `GET /trace/<id>`.
    trace: Option<String>,
}

struct Inner {
    jobs: HashMap<String, JobEntry>,
    pending: VecDeque<String>,
    stats: QueueStats,
    stopped: bool,
}

/// See module docs.
pub struct JobQueue {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                pending: VecDeque::new(),
                stats: QueueStats::default(),
                stopped: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Submit a (normalized) job spec.
    pub fn submit(&self, spec: JobSpec) -> Submit {
        let id = spec.job_id();
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(entry) = inner.jobs.get(&id) {
            let outcome = match entry.status {
                JobStatus::Done | JobStatus::Failed => Submit::Done(id),
                JobStatus::Queued | JobStatus::Running => Submit::Coalesced(id),
            };
            inner.stats.submitted += 1;
            inner.stats.hits += 1;
            return outcome;
        }
        if inner.pending.len() >= self.capacity {
            inner.stats.rejected += 1;
            return Submit::Busy;
        }
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec: Some(spec),
                status: JobStatus::Queued,
                outcome: None,
                trace: None,
            },
        );
        inner.pending.push_back(id.clone());
        inner.stats.submitted += 1;
        inner.stats.unique += 1;
        inner.stats.queued_now += 1;
        self.cond.notify_one();
        Submit::Queued(id)
    }

    /// Block until a job is available (marking it `Running`) or the queue
    /// is stopped (`None`).
    pub fn next_job(&self) -> Option<(String, JobSpec)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(id) = inner.pending.pop_front() {
                inner.stats.queued_now -= 1;
                inner.stats.running_now += 1;
                let entry = inner.jobs.get_mut(&id).expect("pending job exists");
                entry.status = JobStatus::Running;
                let spec = entry.spec.take().expect("queued job keeps its spec");
                return Some((id, spec));
            }
            if inner.stopped {
                return None;
            }
            inner = self.cond.wait(inner).expect("queue lock");
        }
    }

    /// Record a finished job. `Ok` carries the result JSON served to every
    /// `/result` read; `Err` the failure message.
    pub fn complete(&self, id: &str, outcome: Result<String, String>) {
        self.complete_with_trace(id, outcome, None);
    }

    /// [`JobQueue::complete`] that also persists the job's tagged JSONL
    /// event stream, set atomically with the outcome so a client that
    /// sees the result can always fetch the trace.
    pub fn complete_with_trace(
        &self,
        id: &str,
        outcome: Result<String, String>,
        trace: Option<String>,
    ) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.stats.running_now -= 1;
        match &outcome {
            Ok(_) => inner.stats.completed += 1,
            Err(_) => inner.stats.failed += 1,
        }
        let entry = inner.jobs.get_mut(id).expect("running job exists");
        entry.status = if outcome.is_ok() {
            JobStatus::Done
        } else {
            JobStatus::Failed
        };
        entry.outcome = Some(outcome);
        entry.trace = trace;
        // Completion may unblock pollers; state is read via status/result.
        self.cond.notify_all();
    }

    /// Lifecycle of a job, if known.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .get(id)
            .map(|e| e.status)
    }

    /// Stored outcome of a finished job (`None` until completion).
    pub fn outcome(&self, id: &str) -> Option<Result<String, String>> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .get(id)
            .and_then(|e| e.outcome.clone())
    }

    /// Stored tagged trace of a job: `None` for an unknown ID,
    /// `Some(None)` while unfinished (or when the run kept no trace),
    /// `Some(Some(jsonl))` once persisted.
    pub fn trace(&self, id: &str) -> Option<Option<String>> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .get(id)
            .map(|e| e.trace.clone())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue lock").stats.clone()
    }

    /// Stop accepting `next_job` waits; workers drain and exit.
    pub fn stop(&self) {
        self.inner.lock().expect("queue lock").stopped = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_flow::FlowConfig;

    fn spec(tag: &str) -> JobSpec {
        JobSpec::new(
            format!("network {tag}\ninput 1x8x8\nconv c kernel=3 out=2\n"),
            "test-part",
            FlowConfig::new(),
        )
    }

    #[test]
    fn identical_submissions_coalesce_onto_one_build() {
        let q = JobQueue::new(8);
        let Submit::Queued(id) = q.submit(spec("a")) else {
            panic!("first submission queues")
        };
        assert_eq!(q.submit(spec("a")), Submit::Coalesced(id.clone()));
        assert_eq!(q.submit(spec("a")), Submit::Coalesced(id.clone()));
        let (got, _) = q.next_job().unwrap();
        assert_eq!(got, id);
        // Still coalesces while running.
        assert_eq!(q.submit(spec("a")), Submit::Coalesced(id.clone()));
        q.complete(&id, Ok("{\"r\":1}".to_string()));
        assert_eq!(q.submit(spec("a")), Submit::Done(id.clone()));
        let s = q.stats();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.unique, 1);
        assert_eq!(s.hits, 4);
        assert_eq!(q.outcome(&id), Some(Ok("{\"r\":1}".to_string())));
    }

    #[test]
    fn bounded_queue_rejects_bursts_without_losing_accepted_jobs() {
        let q = JobQueue::new(2);
        assert!(matches!(q.submit(spec("a")), Submit::Queued(_)));
        assert!(matches!(q.submit(spec("b")), Submit::Queued(_)));
        assert_eq!(q.submit(spec("c")), Submit::Busy);
        // Draining one slot readmits new work.
        let (id, _) = q.next_job().unwrap();
        assert!(matches!(q.submit(spec("c")), Submit::Queued(_)));
        q.complete(&id, Err("boom".to_string()));
        assert_eq!(q.status(&id), Some(JobStatus::Failed));
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn traces_persist_next_to_the_outcome() {
        let q = JobQueue::new(4);
        assert_eq!(q.trace("ffff"), None, "unknown job");
        let Submit::Queued(id) = q.submit(spec("t")) else {
            panic!("queues")
        };
        assert_eq!(q.trace(&id), Some(None), "no trace while queued");
        let (got, _) = q.next_job().unwrap();
        assert_eq!(got, id);
        q.complete_with_trace(&id, Ok("{}".to_string()), Some("{\"seq\":0}\n".to_string()));
        assert_eq!(q.trace(&id), Some(Some("{\"seq\":0}\n".to_string())));
        assert_eq!(q.outcome(&id), Some(Ok("{}".to_string())));
    }

    #[test]
    fn stop_releases_blocked_workers() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let worker = std::thread::spawn(move || q2.next_job());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.stop();
        assert!(worker.join().unwrap().is_none());
    }
}
