//! Job payloads: what a client submits and what the daemon returns.
//!
//! A [`JobSpec`] is self-contained — the archdef *text* (not a path: the
//! daemon may run on another machine), the device name, the command, and
//! the full [`FlowConfig`] in its `pi_flow::config_json` wire form. Its
//! [`JobSpec::job_id`] is a stable content hash of exactly those fields,
//! computed *after* the daemon normalizes the cache knobs it owns
//! (`db_dir`, `db_budget_bytes`, `threads` — see
//! [`JobSpec::normalized`]), so two clients submitting the same work get
//! the same ID regardless of their local cache settings, and concurrent
//! identical submissions coalesce onto one build. No wall clock anywhere
//! near the ID: resubmitting a job tomorrow finds today's result.
//!
//! [`FlowConfig`]: pi_flow::FlowConfig

use pi_flow::{DbCacheStats, FlowConfig};
use pi_model::ModelFormat;
use pi_netlist::StableHasher;
use serde_json::Value;
use std::path::Path;

/// What the daemon should run for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobCommand {
    /// Pre-implement the components (function optimization only); the
    /// result summary reports the database, no accelerator is composed.
    BuildDb,
    /// Full flow: build/load components off the shared cache, then
    /// compose and route the accelerator (the default).
    Compose,
}

impl JobCommand {
    pub fn as_str(self) -> &'static str {
        match self {
            JobCommand::BuildDb => "build-db",
            JobCommand::Compose => "compose",
        }
    }

    pub fn parse(s: &str) -> Option<JobCommand> {
        match s {
            "build-db" => Some(JobCommand::BuildDb),
            "compose" => Some(JobCommand::Compose),
            _ => None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// Client-side trace context riding along with a job, so the daemon can
/// tag the job's telemetry with the submitting run's identity and the
/// client can splice the remote span tree back under its local span.
///
/// Deliberately excluded from [`JobSpec::job_id`]: two clients submitting
/// identical work with different trace contexts must still coalesce onto
/// one build. The context annotates observability, it never changes what
/// is computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the client run (e.g. the raw spec's content hash) —
    /// deterministic, never a random UUID or timestamp.
    pub trace_id: String,
    /// `scope:name` of the client span the remote tree nests under.
    pub parent_span: String,
}

/// A compile job (see module docs).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Network description text. By default this is archdef syntax
    /// (`parse_archdef` input); [`JobSpec::format`] selects one of the
    /// `pi-model` descriptor dialects instead.
    pub archdef: String,
    /// Device catalog name (`xcku5p-like`, ...).
    pub device: String,
    pub command: JobCommand,
    /// How to interpret [`JobSpec::archdef`]. `Archdef` (the default)
    /// keeps the historical wire form and job IDs; `Json`/`Prototxt`
    /// route the text through the `pi-model` importer.
    pub format: ModelFormat,
    /// Flow configuration; carries no telemetry sink (the daemon installs
    /// its own capture per run).
    pub config: FlowConfig,
    /// Optional trace context (see [`TraceContext`]). On the wire only
    /// when set; never part of the job ID.
    pub trace: Option<TraceContext>,
}

impl JobSpec {
    /// A compose job for `archdef` on `device` under `config`.
    pub fn new(archdef: impl Into<String>, device: impl Into<String>, config: FlowConfig) -> Self {
        JobSpec {
            archdef: archdef.into(),
            device: device.into(),
            command: JobCommand::Compose,
            format: ModelFormat::Archdef,
            config,
            trace: None,
        }
    }

    pub fn with_command(mut self, command: JobCommand) -> Self {
        self.command = command;
        self
    }

    pub fn with_format(mut self, format: ModelFormat) -> Self {
        self.format = format;
        self
    }

    /// Attach a trace context (observability only — see [`TraceContext`]).
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Replace the cache knobs the daemon owns with the daemon's own
    /// settings, and clear `threads` (scheduling belongs to the daemon's
    /// worker pool / `PI_THREADS`, and never changes results). Run before
    /// [`JobSpec::job_id`] so client-local settings cannot split identical
    /// work onto different IDs.
    pub fn normalized(mut self, db_dir: Option<&Path>, db_budget_bytes: Option<u64>) -> JobSpec {
        self.config.db_dir = db_dir.map(Path::to_path_buf);
        self.config.db_budget_bytes = db_budget_bytes;
        self.config.threads = None;
        self
    }

    /// Deterministic job ID: a stable content hash of the payload (no
    /// wall clock, no counters), rendered as 16 hex digits. The trace
    /// context is deliberately not hashed — observability annotations
    /// must not split identical work onto different IDs.
    pub fn job_id(&self) -> String {
        let mut h = StableHasher::new();
        h.write_str(&self.archdef);
        h.write_str(&self.device);
        h.write_str(self.command.as_str());
        // Only non-default formats move the hash, so every archdef job ID
        // minted before descriptor support stays valid.
        if self.format != ModelFormat::Archdef {
            h.write_str(self.format.as_str());
        }
        h.write_str(&self.config.to_json());
        format!("{:016x}", h.finish())
    }

    /// The wire form a client POSTs to `/submit`.
    pub fn to_json(&self) -> String {
        let mut m = Value::Map(Vec::new());
        m["archdef"] = Value::Str(self.archdef.clone());
        m["device"] = Value::Str(self.device.clone());
        m["command"] = Value::Str(self.command.as_str().to_string());
        if self.format != ModelFormat::Archdef {
            m["format"] = Value::Str(self.format.as_str().to_string());
        }
        m["config"] = self.config.to_json_value();
        if let Some(t) = &self.trace {
            let mut trace = Value::Map(Vec::new());
            trace["trace_id"] = Value::Str(t.trace_id.clone());
            trace["parent_span"] = Value::Str(t.parent_span.clone());
            m["trace"] = trace;
        }
        serde_json::to_string(&m).expect("job spec serializes")
    }

    /// Parse a `/submit` body. Every field except `archdef` is optional:
    /// device defaults to `xcku5p-like`, command to `compose`, config to
    /// [`FlowConfig::default`].
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("job: {e}"))?;
        let Value::Map(_) = v else {
            return Err("job: expected a JSON object".to_string());
        };
        let archdef = match v.get("archdef") {
            Some(Value::Str(s)) => s.clone(),
            Some(_) => return Err("job: archdef must be a string".to_string()),
            None => return Err("job: missing archdef".to_string()),
        };
        let device = match v.get("device") {
            Some(Value::Str(s)) => s.clone(),
            None => "xcku5p-like".to_string(),
            Some(_) => return Err("job: device must be a string".to_string()),
        };
        let command = match v.get("command") {
            Some(Value::Str(s)) => {
                JobCommand::parse(s).ok_or_else(|| format!("job: unknown command {s:?}"))?
            }
            None => JobCommand::Compose,
            Some(_) => return Err("job: command must be a string".to_string()),
        };
        let format = match v.get("format") {
            Some(Value::Str(s)) => {
                ModelFormat::parse(s).ok_or_else(|| format!("job: unknown format {s:?}"))?
            }
            None => ModelFormat::Archdef,
            Some(_) => return Err("job: format must be a string".to_string()),
        };
        let config = match v.get("config") {
            Some(c) => FlowConfig::from_json_value(c)?,
            None => FlowConfig::default(),
        };
        let trace = match v.get("trace") {
            Some(t @ Value::Map(_)) => {
                let str_field = |k: &str| match t.get(k) {
                    Some(Value::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("job: trace missing string field {k}")),
                };
                Some(TraceContext {
                    trace_id: str_field("trace_id")?,
                    parent_span: str_field("parent_span")?,
                })
            }
            None => None,
            Some(_) => return Err("job: trace must be an object".to_string()),
        };
        Ok(JobSpec {
            archdef,
            device,
            command,
            format,
            config,
            trace,
        })
    }
}

/// What the daemon stores and returns for a finished job. The stored JSON
/// string is served to every client byte-for-byte, so four clients
/// submitting the same job read four identical responses.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    pub job_id: String,
    /// The deterministic one-line outcome (the same line `preimpl
    /// compose` prints first).
    pub summary: String,
    /// Timestamp-stripped JSONL telemetry of the run — feed it straight
    /// to `flowstat summarize`/`diff`.
    pub trace_jsonl: String,
    /// The aggregated `flowstat` run report, rendered.
    pub report_text: String,
    /// Cache interaction of this run against the shared tier.
    pub cache: DbCacheStats,
}

impl JobResult {
    pub fn to_json(&self) -> String {
        let mut cache = Value::Map(Vec::new());
        cache["hits"] = Value::U64(self.cache.hits as u64);
        cache["misses"] = Value::U64(self.cache.misses as u64);
        cache["invalidations"] = Value::U64(self.cache.invalidations as u64);
        cache["evictions"] = Value::U64(self.cache.evictions);
        cache["bytes_loaded"] = Value::U64(self.cache.bytes_loaded);
        let mut m = Value::Map(Vec::new());
        m["job_id"] = Value::Str(self.job_id.clone());
        m["summary"] = Value::Str(self.summary.clone());
        m["cache"] = cache;
        m["trace"] = Value::Str(self.trace_jsonl.clone());
        m["report"] = Value::Str(self.report_text.clone());
        serde_json::to_string(&m).expect("job result serializes")
    }

    pub fn from_json(text: &str) -> Result<JobResult, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("result: {e}"))?;
        let str_field = |k: &str| match v.get(k) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(format!("result: missing string field {k}")),
        };
        let cache_field = |k: &str| match v.get("cache").and_then(|c| c.get(k)) {
            Some(Value::U64(n)) => Ok(*n),
            _ => Err(format!("result: missing cache field {k}")),
        };
        Ok(JobResult {
            job_id: str_field("job_id")?,
            summary: str_field("summary")?,
            trace_jsonl: str_field("trace")?,
            report_text: str_field("report")?,
            cache: DbCacheStats {
                hits: cache_field("hits")? as usize,
                misses: cache_field("misses")? as usize,
                invalidations: cache_field("invalidations")? as usize,
                bytes_loaded: cache_field("bytes_loaded")?,
                evictions: cache_field("evictions")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn spec() -> JobSpec {
        JobSpec::new(
            "network n\ninput 1x8x8\nconv c1 kernel=3 out=2\n",
            "test-part",
            FlowConfig::new().with_seeds([1, 2]),
        )
    }

    #[test]
    fn job_id_is_a_pure_content_hash() {
        assert_eq!(spec().job_id(), spec().job_id());
        assert_eq!(spec().job_id().len(), 16);
        // Every payload field moves the ID.
        let mut other = spec();
        other.archdef.push('\n');
        assert_ne!(other.job_id(), spec().job_id());
        assert_ne!(
            spec().with_command(JobCommand::BuildDb).job_id(),
            spec().job_id()
        );
        let mut cfg_changed = spec();
        cfg_changed.config = cfg_changed.config.with_effort(9.0);
        assert_ne!(cfg_changed.job_id(), spec().job_id());
    }

    #[test]
    fn normalization_erases_client_local_cache_knobs() {
        let mut a = spec();
        a.config = a
            .config
            .clone()
            .with_db_dir("/home/alice/cache")
            .with_threads(8);
        let mut b = spec();
        b.config = b.config.clone().with_db_dir("/home/bob/cache");
        assert_ne!(a.job_id(), b.job_id(), "raw IDs differ");
        let dir = PathBuf::from("/srv/shared");
        assert_eq!(
            a.normalized(Some(&dir), Some(1 << 20)).job_id(),
            b.normalized(Some(&dir), Some(1 << 20)).job_id(),
            "normalized IDs coalesce"
        );
    }

    #[test]
    fn spec_round_trips_through_the_wire_form() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back.archdef, s.archdef);
        assert_eq!(back.device, s.device);
        assert_eq!(back.command, s.command);
        assert_eq!(back.job_id(), s.job_id());
    }

    #[test]
    fn minimal_submit_bodies_default_sensibly() {
        let s = JobSpec::from_json("{\"archdef\":\"network x\\n\"}").unwrap();
        assert_eq!(s.device, "xcku5p-like");
        assert_eq!(s.command, JobCommand::Compose);
        assert!(JobSpec::from_json("{}").is_err());
        assert!(JobSpec::from_json("[1,2]").is_err());
        assert!(JobSpec::from_json("{\"archdef\":\"x\",\"command\":\"explode\"}").is_err());
    }

    #[test]
    fn descriptor_formats_ride_the_wire_and_move_the_id() {
        // Default format leaves both the wire body and the job ID exactly
        // as they were before descriptor support existed.
        assert!(!spec().to_json().contains("\"format\""));
        let json_spec = spec().with_format(ModelFormat::Json);
        assert!(json_spec.to_json().contains("\"format\":\"json\""));
        assert_ne!(json_spec.job_id(), spec().job_id());
        let back = JobSpec::from_json(&json_spec.to_json()).unwrap();
        assert_eq!(back.format, ModelFormat::Json);
        assert_eq!(back.job_id(), json_spec.job_id());
        assert!(JobSpec::from_json("{\"archdef\":\"x\",\"format\":\"onnx\"}").is_err());
    }

    #[test]
    fn trace_context_rides_the_wire_but_never_the_id() {
        // Default: no trace key on the wire — pre-trace job bodies and
        // stored IDs stay exactly as they were.
        assert!(!spec().to_json().contains("\"trace\""));
        let ctx = TraceContext {
            trace_id: "abcd1234".to_string(),
            parent_span: "serve:request".to_string(),
        };
        let traced = spec().with_trace(ctx.clone());
        // Observability must not split identical work onto different IDs.
        assert_eq!(traced.job_id(), spec().job_id());
        assert!(traced.to_json().contains("\"trace_id\":\"abcd1234\""));
        let back = JobSpec::from_json(&traced.to_json()).unwrap();
        assert_eq!(back.trace, Some(ctx));
        // The context survives daemon-side normalization.
        let norm = traced.normalized(None, None);
        assert!(norm.trace.is_some());
        assert!(JobSpec::from_json("{\"archdef\":\"x\",\"trace\":7}").is_err());
        assert!(JobSpec::from_json("{\"archdef\":\"x\",\"trace\":{\"trace_id\":\"t\"}}").is_err());
    }

    #[test]
    fn result_round_trips() {
        let r = JobResult {
            job_id: "abc".to_string(),
            summary: "assembled n: Fmax 400 MHz".to_string(),
            trace_jsonl: "{\"seq\":0}\n".to_string(),
            report_text: "flowstat run report\n".to_string(),
            cache: DbCacheStats {
                hits: 3,
                misses: 1,
                invalidations: 0,
                bytes_loaded: 4096,
                evictions: 2,
            },
        };
        assert_eq!(JobResult::from_json(&r.to_json()).unwrap(), r);
    }
}
