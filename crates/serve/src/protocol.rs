//! The line-oriented HTTP/1.1 subset `pi-serve` speaks.
//!
//! Hand-rolled over `std::net` because the build environment has no HTTP
//! stack to depend on — and the daemon needs very little: one request per
//! connection (`Connection: close` both ways), a `Content-Length` body,
//! JSON payloads. Anything outside that subset is a [`ServeError::Protocol`]
//! and turns into a `400`, never a panic or a hang (sockets carry read
//! timeouts so a stalled peer cannot wedge a handler thread).

use crate::ServeError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bound on how long a handler waits for a slow peer before giving up.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest request/response body accepted (a LeNet archdef plus a full
/// config is ~2 KB; traces run to a few MB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Read a single request off an accepted connection.
pub fn read_request(stream: &TcpStream) -> Result<Request, ServeError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::Protocol(format!("request line {line:?} has no path")))?
        .to_string();
    let content_length = read_headers(&mut reader)?;
    let body = read_body(&mut reader, content_length)?;
    Ok(Request { method, path, body })
}

/// Write a response and close our half of the connection.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), ServeError> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    Ok(())
}

/// Client side: one request, one response, connection closed.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::Protocol(format!("bad status line {status_line:?}")))?;
    let content_length = read_headers(&mut reader)?;
    let body = read_body(&mut reader, content_length)?;
    Ok((status, body))
}

/// Consume headers up to the blank line; return `Content-Length` if given.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Option<usize>, ServeError> {
    let mut content_length = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let n: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::Protocol(format!("bad content-length {value:?}")))?;
                if n > MAX_BODY_BYTES {
                    return Err(ServeError::Protocol(format!("body of {n} bytes too large")));
                }
                content_length = Some(n);
            }
        }
    }
    Ok(content_length)
}

/// Read exactly `Content-Length` bytes, or to EOF when absent.
fn read_body<R: BufRead>(
    reader: &mut R,
    content_length: Option<usize>,
) -> Result<String, ServeError> {
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.take(MAX_BODY_BYTES as u64).read_to_end(&mut body)?;
        }
    }
    String::from_utf8(body).map_err(|_| ServeError::Protocol("body is not UTF-8".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/submit");
            assert_eq!(req.body, "{\"x\":1}");
            let mut stream = stream;
            write_response(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) = http_call(&addr, "POST", "/submit", "{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn empty_body_get_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.body, "");
            write_response(&mut { stream }, 404, "{}").unwrap();
        });
        let (status, body) = http_call(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{}");
        server.join().unwrap();
    }
}
