//! Blocking client for a running `pi-serve` daemon.
//!
//! Used by `preimpl --remote ADDR` (compose on the farm instead of
//! locally) and by the `pi-serve submit`/`stats`/`stop` subcommands.
//! Every call is one request/response on a fresh connection; waiting for
//! a result is plain polling with a fixed short sleep — job IDs are
//! deterministic, so a dropped poll loop can always be restarted.

use crate::job::{JobResult, JobSpec, TraceContext};
use crate::protocol::http_call;
use crate::ServeError;
use pi_obs::{Event, MemorySink, Obs};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long [`submit_and_wait`] polls before giving up.
pub const WAIT_TIMEOUT: Duration = Duration::from_secs(600);
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Why a remote job did not produce a result.
#[derive(Debug)]
pub enum RemoteError {
    /// Could not reach the daemon or speak the protocol.
    Transport(ServeError),
    /// The daemon turned the request down (bad payload, full queue, ...).
    Rejected { status: u16, message: String },
    /// The job ran and failed; the daemon's error message.
    JobFailed(String),
    /// The job did not finish within [`WAIT_TIMEOUT`].
    Timeout(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Transport(e) => write!(f, "remote: {e}"),
            RemoteError::Rejected { status, message } => {
                write!(f, "remote: daemon said {status}: {message}")
            }
            RemoteError::JobFailed(m) => write!(f, "remote: job failed: {m}"),
            RemoteError::Timeout(id) => write!(f, "remote: job {id} timed out"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<ServeError> for RemoteError {
    fn from(e: ServeError) -> Self {
        RemoteError::Transport(e)
    }
}

/// Pull `"error"` out of a JSON error body, falling back to the raw text.
fn error_message(body: &str) -> String {
    match serde_json::from_str::<Value>(body) {
        Ok(v) => match v.get("error") {
            Some(Value::Str(s)) => s.clone(),
            _ => body.to_string(),
        },
        Err(_) => body.to_string(),
    }
}

/// Submit a job; returns the daemon-side job ID (the ID of the
/// *normalized* spec, which may differ from `spec.job_id()` when the
/// daemon overrides cache knobs).
pub fn submit(addr: &str, spec: &JobSpec) -> Result<String, RemoteError> {
    let (status, body) = http_call(addr, "POST", "/submit", &spec.to_json())?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    let v: Value = serde_json::from_str(&body)
        .map_err(|e| RemoteError::Transport(ServeError::Protocol(e.to_string())))?;
    match v.get("job_id") {
        Some(Value::Str(id)) => Ok(id.clone()),
        _ => Err(RemoteError::Transport(ServeError::Protocol(format!(
            "submit ack without job_id: {body}"
        )))),
    }
}

/// Fetch a finished job's result, or `Ok(None)` while it is still
/// queued/running.
pub fn try_result(addr: &str, job_id: &str) -> Result<Option<JobResult>, RemoteError> {
    let (status, body) = http_call(addr, "GET", &format!("/result/{job_id}"), "")?;
    match status {
        200 => JobResult::from_json(&body)
            .map(Some)
            .map_err(|e| RemoteError::Transport(ServeError::Protocol(e))),
        202 => Ok(None),
        500 => Err(RemoteError::JobFailed(error_message(&body))),
        _ => Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        }),
    }
}

/// Submit a job and block (polling) until its result is available.
pub fn submit_and_wait(addr: &str, spec: &JobSpec) -> Result<JobResult, RemoteError> {
    let job_id = submit(addr, spec)?;
    let deadline = Instant::now() + WAIT_TIMEOUT;
    loop {
        if let Some(result) = try_result(addr, &job_id)? {
            return Ok(result);
        }
        if Instant::now() >= deadline {
            return Err(RemoteError::Timeout(job_id));
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Fetch a finished job's tagged JSONL trace (`GET /trace/<id>`),
/// verbatim. Fails while the job is still queued/running (202) — call
/// after [`submit_and_wait`].
pub fn trace(addr: &str, job_id: &str) -> Result<String, RemoteError> {
    let (status, body) = http_call(addr, "GET", &format!("/trace/{job_id}"), "")?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    Ok(body)
}

/// The daemon's `/metrics` Prometheus text, verbatim.
pub fn metrics(addr: &str) -> Result<String, RemoteError> {
    let (status, body) = http_call(addr, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    Ok(body)
}

/// [`submit_and_wait`] with distributed tracing: attach a deterministic
/// [`TraceContext`] (the raw spec's content hash — no clock, no
/// randomness), fetch the daemon's tagged event stream once the job is
/// done, and splice it under a local `serve:request` span. The returned
/// events are one unified call tree spanning both processes, in replay
/// order with locally assigned sequence numbers — byte-stable for a given
/// job because the remote stream is the stored timestamp-stripped form.
pub fn submit_and_wait_traced(
    addr: &str,
    spec: &JobSpec,
) -> Result<(JobResult, Vec<Event>), RemoteError> {
    let ctx = TraceContext {
        trace_id: spec.job_id(),
        parent_span: "serve:request".to_string(),
    };
    let traced_spec = spec.clone().with_trace(ctx.clone());
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::new(sink.clone());
    // No address/port fields on the span: ephemeral ports are
    // nondeterministic and the spliced stream feeds deterministic diffs.
    let span = obs
        .scoped("serve")
        .span_with("request", &[("trace_id", ctx.trace_id.as_str().into())]);
    let result = submit_and_wait(addr, &traced_spec)?;
    let remote = trace(addr, &result.job_id)?;
    let events = pi_obs::parse_jsonl(&remote)
        .map_err(|e| RemoteError::Transport(ServeError::Protocol(e.to_string())))?;
    obs.replay(events);
    span.end();
    Ok((result, sink.snapshot()))
}

/// The daemon's `/stats` JSON, verbatim.
pub fn stats(addr: &str) -> Result<String, RemoteError> {
    let (status, body) = http_call(addr, "GET", "/stats", "")?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    Ok(body)
}

/// Liveness probe.
pub fn healthz(addr: &str) -> Result<(), RemoteError> {
    let (status, body) = http_call(addr, "GET", "/healthz", "")?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    Ok(())
}

/// Ask the daemon to drain and exit.
pub fn shutdown(addr: &str) -> Result<(), RemoteError> {
    let (status, body) = http_call(addr, "POST", "/shutdown", "")?;
    if status != 200 {
        return Err(RemoteError::Rejected {
            status,
            message: error_message(&body),
        });
    }
    Ok(())
}
