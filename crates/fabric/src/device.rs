//! Device grid, catalog and geometry queries.

use crate::coords::TileCoord;
use crate::pblock::Pblock;
use crate::resources::ResourceCount;
use crate::site::SiteKind;
use crate::tile::TileKind;
use crate::FabricError;
use serde::{Deserialize, Serialize};

/// Extra wire delay (in tile units) paid for crossing an I/O column.
pub const IO_CROSSING_PENALTY: f64 = 3.0;
/// Extra wire delay (in tile units) paid for crossing a structural gap.
pub const GAP_CROSSING_PENALTY: f64 = 1.0;

/// An FPGA device: a grid of tiles where every column has a single tile kind
/// (the columnar organization of UltraScale parts).
///
/// Tiles are not stored individually — the per-column kind plus the row count
/// fully determines the grid, which keeps the model compact and O(1) to query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    name: String,
    columns: Vec<TileKind>,
    rows: u16,
    /// Rows per clock region (horizontal band).
    clock_region_rows: u16,
    totals: ResourceCount,
}

impl Device {
    /// Number of columns in the grid.
    pub fn cols(&self) -> u16 {
        self.columns.len() as u16
    }

    /// Number of rows in the grid.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Device name as it appears in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows per clock region.
    pub fn clock_region_rows(&self) -> u16 {
        self.clock_region_rows
    }

    /// Number of clock regions (horizontal bands).
    pub fn clock_regions(&self) -> u16 {
        self.rows.div_ceil(self.clock_region_rows)
    }

    /// Clock region index a coordinate falls in.
    pub fn clock_region_of(&self, coord: TileCoord) -> u16 {
        coord.row / self.clock_region_rows
    }

    /// Tile kind of a column.
    pub fn column_kind(&self, col: u16) -> Option<TileKind> {
        self.columns.get(col as usize).copied()
    }

    /// Tile kind at a coordinate, or an error when out of bounds.
    pub fn tile_kind(&self, coord: TileCoord) -> Result<TileKind, FabricError> {
        if coord.row >= self.rows {
            return Err(FabricError::OutOfBounds {
                col: coord.col,
                row: coord.row,
            });
        }
        self.column_kind(coord.col).ok_or(FabricError::OutOfBounds {
            col: coord.col,
            row: coord.row,
        })
    }

    /// Site kind at a coordinate, `None` when the tile has no site.
    pub fn site_at(&self, coord: TileCoord) -> Result<Option<SiteKind>, FabricError> {
        Ok(self.tile_kind(coord)?.site())
    }

    /// True when the coordinate is within the grid.
    pub fn in_bounds(&self, coord: TileCoord) -> bool {
        coord.row < self.rows && (coord.col as usize) < self.columns.len()
    }

    /// Total resources of the whole device.
    pub fn totals(&self) -> ResourceCount {
        self.totals
    }

    /// Number of discontinuity columns (I/O or gap) strictly between two
    /// column indices.
    pub fn discontinuities_between(&self, c1: u16, c2: u16) -> (u32, u32) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let mut ios = 0;
        let mut gaps = 0;
        for col in (lo + 1)..hi {
            match self.columns[col as usize] {
                TileKind::Io => ios += 1,
                TileKind::Gap => gaps += 1,
                _ => {}
            }
        }
        (ios, gaps)
    }

    /// Effective wiring distance between two coordinates, in tile units:
    /// Manhattan distance plus penalties for each fabric discontinuity the
    /// horizontal span crosses. This is the distance the delay model uses.
    pub fn wire_distance(&self, a: TileCoord, b: TileCoord) -> f64 {
        let (ios, gaps) = self.discontinuities_between(a.col, b.col);
        a.manhattan(&b) as f64
            + f64::from(ios) * IO_CROSSING_PENALTY
            + f64::from(gaps) * GAP_CROSSING_PENALTY
    }

    /// True when a column range can be relocated by `dcol` columns: every
    /// column in the range must land on a column of the identical kind.
    /// This is the relocation validity rule for pre-implemented modules.
    pub fn columns_compatible(&self, col_lo: u16, col_hi: u16, dcol: i32) -> bool {
        if col_lo > col_hi {
            return false;
        }
        for col in col_lo..=col_hi {
            let target = i32::from(col) + dcol;
            if target < 0 || target as usize >= self.columns.len() {
                return false;
            }
            if self.columns[col as usize] != self.columns[target as usize] {
                return false;
            }
        }
        true
    }

    /// All valid column offsets (excluding 0) a range can be relocated by.
    pub fn relocation_offsets(&self, col_lo: u16, col_hi: u16) -> Vec<i32> {
        let span = i32::from(self.cols());
        (-span..span)
            .filter(|&d| d != 0 && self.columns_compatible(col_lo, col_hi, d))
            .collect()
    }

    /// Resource capacity of a pblock on this device.
    pub fn pblock_capacity(&self, pb: &Pblock) -> Result<ResourceCount, FabricError> {
        pb.validate(self)?;
        let rows = u64::from(pb.row_hi - pb.row_lo + 1);
        let mut total = ResourceCount::ZERO;
        for col in pb.col_lo..=pb.col_hi {
            if let Some(site) = self.columns[col as usize].site() {
                total += ResourceCount::from_capacity(site.capacity(), rows);
            }
        }
        Ok(total)
    }

    /// All site coordinates of a given kind inside a pblock.
    pub fn sites_in<'a>(
        &'a self,
        pb: &Pblock,
        kind: SiteKind,
    ) -> impl Iterator<Item = TileCoord> + 'a {
        let (cl, ch, rl, rh) = (pb.col_lo, pb.col_hi, pb.row_lo, pb.row_hi);
        (cl..=ch)
            .filter(move |&c| self.columns.get(c as usize).and_then(|k| k.site()) == Some(kind))
            .flat_map(move |c| (rl..=rh).map(move |r| TileCoord::new(c, r)))
    }

    /// A pblock covering the full device.
    pub fn full_pblock(&self) -> Pblock {
        Pblock::new(0, self.cols() - 1, 0, self.rows - 1)
    }

    /// One-line floorplan sketch of the column pattern (for docs and debug).
    pub fn column_sketch(&self) -> String {
        self.columns.iter().map(|k| k.code()).collect()
    }

    /// Look up a device by catalog name.
    pub fn catalog(name: &str) -> Result<Device, FabricError> {
        match name {
            "xcku5p-like" => Ok(Self::xcku5p_like()),
            "xcku060-like" => Ok(Self::xcku060_like()),
            "test-part" => Ok(Self::test_part()),
            other => Err(FabricError::UnknownDevice(other.to_string())),
        }
    }

    /// Kintex UltraScale+ evaluation part modeled after the paper's
    /// xcku5p-ffvd900. Capacity (~430k LUTs, 3840 DSP/BRAM) is sized so the
    /// paper's *absolute* Table II demands (283k LUTs, ~2100 DSPs for VGG)
    /// fit with enough headroom for the automated floorplanner to pack the
    /// rigid component pblocks — the paper hand-tuned its pblock shapes at
    /// higher fill. Utilization percentages therefore read lower than
    /// Table II's; EXPERIMENTS.md records both. Column groups are uniform —
    /// the columnar regularity relocation bets on ("Xilinx architectures
    /// generally replicate the resource structures over an entire column of
    /// clock regions").
    pub fn xcku5p_like() -> Device {
        DeviceBuilder::new("xcku5p-like", 448, 64)
            .io_column()
            .groups(4, GroupKind::Bram)
            .io_column()
            .groups(4, GroupKind::Bram)
            .io_column()
            .build()
    }

    /// Kintex UltraScale KU060-like part (Table IV platform): slightly
    /// smaller, 5 clock-region rows.
    pub fn xcku060_like() -> Device {
        DeviceBuilder::new("xcku060-like", 300, 60)
            .io_column()
            .groups(3, GroupKind::Bram)
            .io_column()
            .groups(3, GroupKind::Bram)
            .io_column()
            .build()
    }

    /// Tiny part for fast unit tests: 2 groups, 40 rows.
    pub fn test_part() -> Device {
        DeviceBuilder::new("test-part", 40, 20)
            .io_column()
            .groups(1, GroupKind::Bram)
            .io_column()
            .groups(1, GroupKind::Bram)
            .io_column()
            .build()
    }
}

/// Which hard-block column terminates a column group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// 14 CLB columns + 1 DSP column + 1 BRAM column.
    Bram,
    /// 14 CLB columns + 1 DSP column + 1 URAM column.
    Uram,
}

/// Programmatic device construction. Groups model the repeated column
/// templates of UltraScale parts.
pub struct DeviceBuilder {
    name: String,
    rows: u16,
    clock_region_rows: u16,
    columns: Vec<TileKind>,
}

impl DeviceBuilder {
    pub fn new(name: &str, rows: u16, clock_region_rows: u16) -> Self {
        assert!(rows > 0 && clock_region_rows > 0);
        DeviceBuilder {
            name: name.to_string(),
            rows,
            clock_region_rows,
            columns: Vec::new(),
        }
    }

    /// Append a single I/O column (fabric discontinuity).
    pub fn io_column(mut self) -> Self {
        self.columns.push(TileKind::Io);
        self
    }

    /// Append a structural gap column.
    pub fn gap_column(mut self) -> Self {
        self.columns.push(TileKind::Gap);
        self
    }

    /// Append `n` column groups of the given kind.
    pub fn groups(mut self, n: usize, kind: GroupKind) -> Self {
        for _ in 0..n {
            for _ in 0..7 {
                self.columns.push(TileKind::Clb);
            }
            self.columns.push(TileKind::Dsp);
            for _ in 0..7 {
                self.columns.push(TileKind::Clb);
            }
            self.columns.push(match kind {
                GroupKind::Bram => TileKind::Bram,
                GroupKind::Uram => TileKind::Uram,
            });
        }
        self
    }

    /// Append an explicit column.
    pub fn column(mut self, kind: TileKind) -> Self {
        self.columns.push(kind);
        self
    }

    pub fn build(self) -> Device {
        let rows = u64::from(self.rows);
        let totals = self
            .columns
            .iter()
            .filter_map(|k| k.site())
            .map(|s| ResourceCount::from_capacity(s.capacity(), rows))
            .sum();
        Device {
            name: self.name,
            columns: self.columns,
            rows: self.rows,
            clock_region_rows: self.clock_region_rows,
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcku5p_totals_match_paper_implied_capacity() {
        let d = Device::xcku5p_like();
        let t = d.totals();
        // Sized to hold the paper's absolute VGG demand (~283k LUTs, ~2.1k
        // DSPs) plus floorplanning headroom.
        assert!(
            (380_000..460_000).contains(&t.luts),
            "LUT total {} out of calibration band",
            t.luts
        );
        assert_eq!(t.brams, 8 * 448);
        assert_eq!(t.dsps, 8 * 448);
        assert_eq!(t.ffs, t.luts * 2);
    }

    #[test]
    fn tile_kind_lookup_and_bounds() {
        let d = Device::test_part();
        assert_eq!(d.column_kind(0), Some(TileKind::Io));
        assert!(d.tile_kind(TileCoord::new(0, d.rows())).is_err());
        assert!(d.tile_kind(TileCoord::new(d.cols(), 0)).is_err());
        assert!(d.in_bounds(TileCoord::new(1, 1)));
    }

    #[test]
    fn clock_regions() {
        let d = Device::xcku5p_like();
        assert_eq!(d.clock_regions(), 7);
        assert_eq!(d.clock_region_of(TileCoord::new(0, 0)), 0);
        assert_eq!(d.clock_region_of(TileCoord::new(0, 447)), 6);
    }

    #[test]
    fn wire_distance_pays_for_io_crossings() {
        let d = Device::test_part();
        // Columns 0, 17 and 34 are I/O in the test part.
        let a = TileCoord::new(1, 0);
        let b = TileCoord::new(16, 0);
        let c = TileCoord::new(20, 0);
        assert_eq!(d.wire_distance(a, b), 15.0); // same side, no crossing
        assert!(d.wire_distance(a, c) > a.manhattan(&c) as f64);
    }

    #[test]
    fn relocation_respects_column_pattern() {
        let d = Device::test_part();
        // Group width is 16 columns; one full group shift must be compatible
        // for a range inside the first group.
        assert!(d.columns_compatible(1, 8, 17)); // 16-col group + 1 io column
        assert!(!d.columns_compatible(1, 8, 1)); // misaligns DSP column
        assert!(!d.columns_compatible(1, 8, 10_000));
        let offs = d.relocation_offsets(1, 8);
        assert!(offs.contains(&17));
        assert!(!offs.contains(&0));
    }

    #[test]
    fn pblock_capacity_counts_columns() {
        let d = Device::test_part();
        // Columns 1..=8 of the test part: 7 CLB + 1 DSP.
        let pb = Pblock::new(1, 8, 0, 9);
        let cap = d.pblock_capacity(&pb).unwrap();
        assert_eq!(cap.luts, 7 * 10 * 8);
        assert_eq!(cap.dsps, 10);
        assert_eq!(cap.brams, 0);
    }

    #[test]
    fn sites_in_filters_by_kind() {
        let d = Device::test_part();
        let pb = Pblock::new(1, 16, 0, 3);
        let slices: Vec<_> = d.sites_in(&pb, SiteKind::Slice).collect();
        assert_eq!(slices.len(), 14 * 4);
        let brams: Vec<_> = d.sites_in(&pb, SiteKind::Ramb36).collect();
        assert_eq!(brams.len(), 4);
    }

    #[test]
    fn catalog_round_trip() {
        assert!(Device::catalog("xcku5p-like").is_ok());
        assert!(Device::catalog("nonsense").is_err());
    }

    #[test]
    fn sketch_shows_columns() {
        let d = Device::test_part();
        let s = d.column_sketch();
        assert!(s.starts_with('I'));
        assert_eq!(s.len(), d.cols() as usize);
        assert!(s.contains('D') && s.contains('B'));
    }
}
