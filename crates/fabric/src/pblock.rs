//! Pblocks: rectangular floorplan constraints.

use crate::coords::TileCoord;
use crate::device::Device;
use crate::FabricError;
use serde::{Deserialize, Serialize};

/// An inclusive rectangle of tiles used to constrain where a module may be
/// placed. The paper pre-implements every component inside a tight pblock so
/// it uses the minimum resources and stays relocatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pblock {
    pub col_lo: u16,
    pub col_hi: u16,
    pub row_lo: u16,
    pub row_hi: u16,
}

impl Pblock {
    pub const fn new(col_lo: u16, col_hi: u16, row_lo: u16, row_hi: u16) -> Self {
        Pblock {
            col_lo,
            col_hi,
            row_lo,
            row_hi,
        }
    }

    /// Width in columns.
    pub const fn width(&self) -> u16 {
        self.col_hi - self.col_lo + 1
    }

    /// Height in rows.
    pub const fn height(&self) -> u16 {
        self.row_hi - self.row_lo + 1
    }

    /// Area in tiles.
    pub fn area(&self) -> u32 {
        u32::from(self.width()) * u32::from(self.height())
    }

    /// Geometric center (rounded down).
    pub fn center(&self) -> TileCoord {
        TileCoord::new(
            self.col_lo + self.width() / 2,
            self.row_lo + self.height() / 2,
        )
    }

    /// True when the coordinate lies inside the rectangle.
    pub fn contains(&self, coord: TileCoord) -> bool {
        (self.col_lo..=self.col_hi).contains(&coord.col)
            && (self.row_lo..=self.row_hi).contains(&coord.row)
    }

    /// True when the two rectangles share at least one tile.
    pub fn overlaps(&self, other: &Pblock) -> bool {
        self.col_lo <= other.col_hi
            && other.col_lo <= self.col_hi
            && self.row_lo <= other.row_hi
            && other.row_lo <= self.row_hi
    }

    /// Number of tiles in the intersection of the two rectangles.
    pub fn overlap_area(&self, other: &Pblock) -> u32 {
        if !self.overlaps(other) {
            return 0;
        }
        let w = u32::from(self.col_hi.min(other.col_hi) - self.col_lo.max(other.col_lo) + 1);
        let h = u32::from(self.row_hi.min(other.row_hi) - self.row_lo.max(other.row_lo) + 1);
        w * h
    }

    /// The pblock translated by (dcol, drow); `None` when it would leave the
    /// u16 coordinate space.
    pub fn translated(&self, dcol: i32, drow: i32) -> Option<Pblock> {
        let lo = TileCoord::new(self.col_lo, self.row_lo).translated(dcol, drow)?;
        let hi = TileCoord::new(self.col_hi, self.row_hi).translated(dcol, drow)?;
        Some(Pblock::new(lo.col, hi.col, lo.row, hi.row))
    }

    /// Check the rectangle is well-formed and inside the device grid.
    pub fn validate(&self, device: &Device) -> Result<(), FabricError> {
        if self.col_lo > self.col_hi || self.row_lo > self.row_hi {
            return Err(FabricError::BadPblock(format!(
                "degenerate rectangle cols {}..={} rows {}..={}",
                self.col_lo, self.col_hi, self.row_lo, self.row_hi
            )));
        }
        if self.col_hi >= device.cols() || self.row_hi >= device.rows() {
            return Err(FabricError::BadPblock(format!(
                "rectangle cols {}..={} rows {}..={} exceeds {}x{} grid",
                self.col_lo,
                self.col_hi,
                self.row_lo,
                self.row_hi,
                device.cols(),
                device.rows()
            )));
        }
        Ok(())
    }

    /// Iterate all tile coordinates inside the rectangle (column-major).
    pub fn tiles(&self) -> impl Iterator<Item = TileCoord> + '_ {
        (self.col_lo..=self.col_hi)
            .flat_map(move |c| (self.row_lo..=self.row_hi).map(move |r| TileCoord::new(c, r)))
    }
}

impl std::fmt::Display for Pblock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SLICE_X{}Y{}:SLICE_X{}Y{}",
            self.col_lo, self.row_lo, self.col_hi, self.row_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let pb = Pblock::new(2, 5, 10, 19);
        assert_eq!(pb.width(), 4);
        assert_eq!(pb.height(), 10);
        assert_eq!(pb.area(), 40);
        assert_eq!(pb.center(), TileCoord::new(4, 15));
        assert!(pb.contains(TileCoord::new(2, 10)));
        assert!(pb.contains(TileCoord::new(5, 19)));
        assert!(!pb.contains(TileCoord::new(6, 19)));
    }

    #[test]
    fn overlap() {
        let a = Pblock::new(0, 4, 0, 4);
        let b = Pblock::new(4, 8, 4, 8);
        let c = Pblock::new(5, 8, 5, 8);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 1);
        assert!(!a.overlaps(&c));
        assert_eq!(a.overlap_area(&c), 0);
        assert_eq!(a.overlap_area(&a), 25);
    }

    #[test]
    fn translation() {
        let pb = Pblock::new(1, 3, 1, 3);
        assert_eq!(pb.translated(2, -1), Some(Pblock::new(3, 5, 0, 2)));
        assert_eq!(pb.translated(-2, 0), None);
    }

    #[test]
    fn validation_against_device() {
        let d = crate::Device::test_part();
        assert!(Pblock::new(0, 5, 0, 5).validate(&d).is_ok());
        assert!(Pblock::new(5, 4, 0, 5).validate(&d).is_err());
        assert!(Pblock::new(0, d.cols(), 0, 5).validate(&d).is_err());
        assert!(Pblock::new(0, 5, 0, d.rows()).validate(&d).is_err());
    }

    #[test]
    fn tile_iteration_covers_area() {
        let pb = Pblock::new(1, 2, 3, 5);
        let tiles: Vec<_> = pb.tiles().collect();
        assert_eq!(tiles.len() as u32, pb.area());
        assert!(tiles.iter().all(|t| pb.contains(*t)));
    }
}
