//! Site kinds and their logic capacities.

use serde::{Deserialize, Serialize};

/// The kind of site a tile provides.
///
/// The model is site-granular: one netlist cell occupies one site. Raw
/// LUT/FF counts are tracked *inside* cells and checked against
/// [`SiteCapacity`] when legalizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// A CLB slice: 8 6-input LUTs and 16 flip-flops (UltraScale SLICEL/M).
    Slice,
    /// A DSP48E2 block.
    Dsp48,
    /// A 36 Kb block RAM.
    Ramb36,
    /// A 288 Kb UltraRAM.
    Uram288,
    /// An I/O block.
    Iob,
}

impl SiteKind {
    /// Logic capacity of one site of this kind.
    pub const fn capacity(self) -> SiteCapacity {
        match self {
            SiteKind::Slice => SiteCapacity {
                luts: 8,
                ffs: 16,
                brams: 0,
                dsps: 0,
                urams: 0,
                ios: 0,
            },
            SiteKind::Dsp48 => SiteCapacity {
                luts: 0,
                ffs: 0,
                brams: 0,
                dsps: 1,
                urams: 0,
                ios: 0,
            },
            SiteKind::Ramb36 => SiteCapacity {
                luts: 0,
                ffs: 0,
                brams: 1,
                dsps: 0,
                urams: 0,
                ios: 0,
            },
            SiteKind::Uram288 => SiteCapacity {
                luts: 0,
                ffs: 0,
                brams: 0,
                dsps: 0,
                urams: 1,
                ios: 0,
            },
            SiteKind::Iob => SiteCapacity {
                luts: 0,
                ffs: 0,
                brams: 0,
                dsps: 0,
                urams: 0,
                ios: 1,
            },
        }
    }

    /// Short name used in reports.
    pub const fn short_name(self) -> &'static str {
        match self {
            SiteKind::Slice => "SLICE",
            SiteKind::Dsp48 => "DSP48",
            SiteKind::Ramb36 => "RAMB36",
            SiteKind::Uram288 => "URAM288",
            SiteKind::Iob => "IOB",
        }
    }
}

/// Logic capacity of a site (or an aggregate of sites).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCapacity {
    pub luts: u32,
    pub ffs: u32,
    pub brams: u32,
    pub dsps: u32,
    pub urams: u32,
    pub ios: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_capacity_is_ultrascale_like() {
        let c = SiteKind::Slice.capacity();
        assert_eq!(c.luts, 8);
        assert_eq!(c.ffs, 16);
        assert_eq!(c.dsps, 0);
    }

    #[test]
    fn hard_blocks_are_unit_capacity() {
        assert_eq!(SiteKind::Dsp48.capacity().dsps, 1);
        assert_eq!(SiteKind::Ramb36.capacity().brams, 1);
        assert_eq!(SiteKind::Uram288.capacity().urams, 1);
        assert_eq!(SiteKind::Iob.capacity().ios, 1);
    }
}
