//! Clock distribution model.
//!
//! UltraScale parts route clocks on a dedicated tree segmented by clock
//! region. Two effects matter to the flow:
//!
//! * **Skew**: registers in different clock regions see the clock at
//!   slightly different times; paths crossing regions lose margin. The OOC
//!   flow's `HD.CLK_SRC` constraint exists precisely so this is analyzable
//!   before the module is placed in its final region.
//! * **Insertion delay** is common-mode and cancels out of setup analysis,
//!   so the model only carries skew.

use crate::coords::TileCoord;
use crate::device::Device;

/// Worst-case skew between adjacent clock regions, picoseconds. Stacked
/// regions on the same vertical distribution spine track each other well;
/// the penalty is deliberately small but non-zero so region-crossing paths
/// rank worse than local ones.
pub const SKEW_PER_REGION_PS: f64 = 18.0;

/// Worst-case clock skew charged to a path between two placed points.
pub fn skew_ps(device: &Device, a: TileCoord, b: TileCoord) -> f64 {
    let ra = device.clock_region_of(a);
    let rb = device.clock_region_of(b);
    f64::from(ra.abs_diff(rb)) * SKEW_PER_REGION_PS
}

/// Number of clock-region boundaries a vertical span crosses — used by
/// floorplanning to prefer region-aligned pblocks.
pub fn regions_spanned(device: &Device, row_lo: u16, row_hi: u16) -> u16 {
    let lo = row_lo / device.clock_region_rows();
    let hi = row_hi / device.clock_region_rows();
    hi - lo + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_is_zero_within_a_region() {
        let d = Device::xcku5p_like();
        let a = TileCoord::new(1, 0);
        let b = TileCoord::new(60, 63);
        assert_eq!(skew_ps(&d, a, b), 0.0);
    }

    #[test]
    fn skew_grows_with_region_distance() {
        let d = Device::xcku5p_like();
        let a = TileCoord::new(1, 0);
        let near = TileCoord::new(1, 64); // next region
        let far = TileCoord::new(1, 447); // last region
        assert_eq!(skew_ps(&d, a, near), SKEW_PER_REGION_PS);
        assert!(skew_ps(&d, a, far) > skew_ps(&d, a, near));
        // Symmetric.
        assert_eq!(skew_ps(&d, far, a), skew_ps(&d, a, far));
    }

    #[test]
    fn regions_spanned_counts_bands() {
        let d = Device::xcku5p_like();
        assert_eq!(regions_spanned(&d, 0, 63), 1);
        assert_eq!(regions_spanned(&d, 0, 64), 2);
        assert_eq!(regions_spanned(&d, 60, 70), 2);
        assert_eq!(regions_spanned(&d, 0, 447), 7);
    }
}
