//! Tiles: one grid position providing zero or one site.

use crate::site::SiteKind;
use serde::{Deserialize, Serialize};

/// What a grid position holds. A whole column shares one kind — this is the
/// columnar structure the relocation checks rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Configurable logic block column (one SLICE per tile).
    Clb,
    /// DSP column (one DSP48 per tile).
    Dsp,
    /// Block RAM column (one RAMB36 per tile).
    Bram,
    /// UltraRAM column.
    Uram,
    /// I/O column — a fabric discontinuity: no user logic, extra wire delay
    /// for nets crossing it.
    Io,
    /// Structural gap (clock spines, config column). No site, crossing
    /// penalty like Io but smaller.
    Gap,
}

impl TileKind {
    /// The site this tile provides, if any.
    pub const fn site(self) -> Option<SiteKind> {
        match self {
            TileKind::Clb => Some(SiteKind::Slice),
            TileKind::Dsp => Some(SiteKind::Dsp48),
            TileKind::Bram => Some(SiteKind::Ramb36),
            TileKind::Uram => Some(SiteKind::Uram288),
            TileKind::Io => Some(SiteKind::Iob),
            TileKind::Gap => None,
        }
    }

    /// True when the column interrupts general-purpose fabric routing.
    pub const fn is_discontinuity(self) -> bool {
        matches!(self, TileKind::Io | TileKind::Gap)
    }

    /// Single-character code used in floorplan sketches.
    pub const fn code(self) -> char {
        match self {
            TileKind::Clb => 'C',
            TileKind::Dsp => 'D',
            TileKind::Bram => 'B',
            TileKind::Uram => 'U',
            TileKind::Io => 'I',
            TileKind::Gap => '.',
        }
    }
}

/// One tile of the device grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    pub kind: TileKind,
    /// Clock region index this tile belongs to.
    pub clock_region: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_mapping() {
        assert_eq!(TileKind::Clb.site(), Some(SiteKind::Slice));
        assert_eq!(TileKind::Gap.site(), None);
    }

    #[test]
    fn discontinuities() {
        assert!(TileKind::Io.is_discontinuity());
        assert!(TileKind::Gap.is_discontinuity());
        assert!(!TileKind::Clb.is_discontinuity());
        assert!(!TileKind::Dsp.is_discontinuity());
    }
}
