//! Tile coordinates and distance helpers.

use serde::{Deserialize, Serialize};

/// A position on the device grid, addressed as (column, row).
///
/// Columns run left-to-right, rows bottom-to-top, matching the usual Xilinx
/// floorplan view. The grid is small enough that `u16` is always sufficient
/// and keeps coordinate-heavy structures compact (see the type-size advice in
/// the perf guides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileCoord {
    pub col: u16,
    pub row: u16,
}

impl TileCoord {
    /// Create a coordinate.
    pub const fn new(col: u16, row: u16) -> Self {
        Self { col, row }
    }

    /// Manhattan distance to `other`, in tiles.
    pub fn manhattan(&self, other: &TileCoord) -> u32 {
        self.col.abs_diff(other.col) as u32 + self.row.abs_diff(other.row) as u32
    }

    /// Chebyshev (max-axis) distance to `other`.
    pub fn chebyshev(&self, other: &TileCoord) -> u32 {
        (self.col.abs_diff(other.col) as u32).max(self.row.abs_diff(other.row) as u32)
    }

    /// Translate by a signed offset, returning `None` on underflow/overflow.
    pub fn translated(&self, dcol: i32, drow: i32) -> Option<TileCoord> {
        let col = i32::from(self.col) + dcol;
        let row = i32::from(self.row) + drow;
        if (0..=i32::from(u16::MAX)).contains(&col) && (0..=i32::from(u16::MAX)).contains(&row) {
            Some(TileCoord::new(col as u16, row as u16))
        } else {
            None
        }
    }
}

impl std::fmt::Display for TileCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}Y{}", self.col, self.row)
    }
}

/// Half-perimeter wire length of a set of coordinates (the standard HPWL
/// placement cost; Eq. 1 of the paper sums HPWL over component pairs).
pub fn hpwl(coords: &[TileCoord]) -> u32 {
    let mut it = coords.iter();
    let Some(first) = it.next() else { return 0 };
    let (mut cmin, mut cmax, mut rmin, mut rmax) = (first.col, first.col, first.row, first.row);
    for c in it {
        cmin = cmin.min(c.col);
        cmax = cmax.max(c.col);
        rmin = rmin.min(c.row);
        rmax = rmax.max(c.row);
    }
    u32::from(cmax - cmin) + u32::from(rmax - rmin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_chebyshev() {
        let a = TileCoord::new(3, 4);
        let b = TileCoord::new(7, 1);
        assert_eq!(a.manhattan(&b), 7);
        assert_eq!(b.manhattan(&a), 7);
        assert_eq!(a.chebyshev(&b), 4);
    }

    #[test]
    fn translation_bounds() {
        let a = TileCoord::new(1, 1);
        assert_eq!(a.translated(-1, -1), Some(TileCoord::new(0, 0)));
        assert_eq!(a.translated(-2, 0), None);
        assert_eq!(a.translated(0, i32::from(u16::MAX)), None);
    }

    #[test]
    fn hpwl_basic() {
        assert_eq!(hpwl(&[]), 0);
        assert_eq!(hpwl(&[TileCoord::new(5, 5)]), 0);
        let pts = [
            TileCoord::new(0, 0),
            TileCoord::new(4, 2),
            TileCoord::new(2, 7),
        ];
        assert_eq!(hpwl(&pts), 4 + 7);
    }

    #[test]
    fn display_matches_xilinx_style() {
        assert_eq!(TileCoord::new(12, 240).to_string(), "X12Y240");
    }
}
