//! Columnar FPGA device model.
//!
//! This crate models the physical substrate the rest of the toolflow targets:
//! a rectangular grid of tiles organized in resource *columns* (CLB, DSP,
//! BRAM, URAM, IO), grouped into clock regions, the way Xilinx
//! UltraScale/UltraScale+ parts are organized. The model captures exactly the
//! properties the pre-implemented flow depends on:
//!
//! * **Columnar repetition** — a placed-and-routed module can be relocated to
//!   another chip location iff the column pattern under it is identical
//!   (see [`Device::columns_compatible`]).
//! * **Resource accounting** — every tile exposes site capacities so pblocks
//!   and utilization reports count LUT/FF/BRAM/DSP exactly.
//! * **Fabric discontinuities** — IO columns interrupt the fabric; nets that
//!   cross them pay extra delay ([`Device::wire_distance`]), the effect the
//!   paper blames for VGG's datapath stretching.
//! * **Clock regions** — used for clock-skew estimation and pblock snapping.

pub mod clock;
pub mod coords;
pub mod device;
pub mod pblock;
pub mod resources;
pub mod site;
pub mod tile;

pub use coords::TileCoord;
pub use device::{Device, DeviceBuilder};
pub use pblock::Pblock;
pub use resources::ResourceCount;
pub use site::{SiteCapacity, SiteKind};
pub use tile::{Tile, TileKind};

/// Errors produced by the fabric layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Coordinate outside the device grid.
    OutOfBounds { col: u16, row: u16 },
    /// A pblock rectangle is degenerate or exceeds the grid.
    BadPblock(String),
    /// Unknown device name requested from the catalog.
    UnknownDevice(String),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::OutOfBounds { col, row } => {
                write!(f, "tile coordinate ({col}, {row}) outside device grid")
            }
            FabricError::BadPblock(msg) => write!(f, "invalid pblock: {msg}"),
            FabricError::UnknownDevice(name) => write!(f, "unknown device: {name}"),
        }
    }
}

impl std::error::Error for FabricError {}
