//! Aggregate resource accounting shared by pblocks, utilization reports and
//! synthesis cost models.

use crate::site::SiteCapacity;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counts of FPGA logic resources. Used both for capacities (how much a
/// region offers) and demands (how much a netlist needs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCount {
    pub luts: u64,
    pub ffs: u64,
    pub brams: u64,
    pub dsps: u64,
    pub urams: u64,
    pub ios: u64,
}

impl ResourceCount {
    pub const ZERO: ResourceCount = ResourceCount {
        luts: 0,
        ffs: 0,
        brams: 0,
        dsps: 0,
        urams: 0,
        ios: 0,
    };

    /// Build from per-site capacity times a multiplier.
    pub fn from_capacity(cap: SiteCapacity, count: u64) -> Self {
        ResourceCount {
            luts: u64::from(cap.luts) * count,
            ffs: u64::from(cap.ffs) * count,
            brams: u64::from(cap.brams) * count,
            dsps: u64::from(cap.dsps) * count,
            urams: u64::from(cap.urams) * count,
            ios: u64::from(cap.ios) * count,
        }
    }

    /// True when `self` fits within `capacity` on every resource class.
    pub fn fits_in(&self, capacity: &ResourceCount) -> bool {
        self.luts <= capacity.luts
            && self.ffs <= capacity.ffs
            && self.brams <= capacity.brams
            && self.dsps <= capacity.dsps
            && self.urams <= capacity.urams
            && self.ios <= capacity.ios
    }

    /// Utilization of `self` against `total`, as a percentage per class.
    /// Classes with zero capacity report 0%.
    pub fn percent_of(&self, total: &ResourceCount) -> ResourcePercent {
        fn pct(used: u64, cap: u64) -> f64 {
            if cap == 0 {
                0.0
            } else {
                100.0 * used as f64 / cap as f64
            }
        }
        ResourcePercent {
            luts: pct(self.luts, total.luts),
            ffs: pct(self.ffs, total.ffs),
            brams: pct(self.brams, total.brams),
            dsps: pct(self.dsps, total.dsps),
            urams: pct(self.urams, total.urams),
            ios: pct(self.ios, total.ios),
        }
    }

    /// Saturating element-wise subtraction.
    pub fn saturating_sub(&self, other: &ResourceCount) -> ResourceCount {
        ResourceCount {
            luts: self.luts.saturating_sub(other.luts),
            ffs: self.ffs.saturating_sub(other.ffs),
            brams: self.brams.saturating_sub(other.brams),
            dsps: self.dsps.saturating_sub(other.dsps),
            urams: self.urams.saturating_sub(other.urams),
            ios: self.ios.saturating_sub(other.ios),
        }
    }

    /// Scale every class by a rational factor, rounding up (used by the
    /// monolithic-synthesis overhead model).
    pub fn scale_ceil(&self, num: u64, den: u64) -> ResourceCount {
        let s = |v: u64| v.saturating_mul(num).div_ceil(den);
        ResourceCount {
            luts: s(self.luts),
            ffs: s(self.ffs),
            brams: s(self.brams),
            dsps: s(self.dsps),
            urams: s(self.urams),
            ios: s(self.ios),
        }
    }

    /// Sum of all classes — a crude "size" used for move budgets.
    pub fn total_units(&self) -> u64 {
        self.luts + self.ffs + self.brams + self.dsps + self.urams + self.ios
    }
}

impl Add for ResourceCount {
    type Output = ResourceCount;
    fn add(self, rhs: ResourceCount) -> ResourceCount {
        ResourceCount {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
            urams: self.urams + rhs.urams,
            ios: self.ios + rhs.ios,
        }
    }
}

impl AddAssign for ResourceCount {
    fn add_assign(&mut self, rhs: ResourceCount) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ResourceCount {
    fn sum<I: Iterator<Item = ResourceCount>>(iter: I) -> Self {
        iter.fold(ResourceCount::ZERO, |a, b| a + b)
    }
}

/// Percent utilization per resource class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourcePercent {
    pub luts: f64,
    pub ffs: f64,
    pub brams: f64,
    pub dsps: f64,
    pub urams: f64,
    pub ios: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteKind;

    #[test]
    fn capacity_multiplication() {
        let r = ResourceCount::from_capacity(SiteKind::Slice.capacity(), 10);
        assert_eq!(r.luts, 80);
        assert_eq!(r.ffs, 160);
    }

    #[test]
    fn fits_and_percent() {
        let cap = ResourceCount {
            luts: 100,
            ffs: 200,
            brams: 4,
            dsps: 2,
            urams: 0,
            ios: 0,
        };
        let used = ResourceCount {
            luts: 50,
            ffs: 100,
            brams: 4,
            dsps: 0,
            urams: 0,
            ios: 0,
        };
        assert!(used.fits_in(&cap));
        let pct = used.percent_of(&cap);
        assert!((pct.luts - 50.0).abs() < 1e-9);
        assert!((pct.brams - 100.0).abs() < 1e-9);
        assert_eq!(pct.urams, 0.0);
        let over = ResourceCount { brams: 5, ..used };
        assert!(!over.fits_in(&cap));
    }

    #[test]
    fn scale_ceil_rounds_up() {
        let r = ResourceCount {
            luts: 10,
            ffs: 0,
            brams: 1,
            dsps: 0,
            urams: 0,
            ios: 0,
        };
        let s = r.scale_ceil(110, 100);
        assert_eq!(s.luts, 11);
        assert_eq!(s.brams, 2); // 1.1 rounds up
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            ResourceCount {
                luts: 1,
                ..ResourceCount::ZERO
            },
            ResourceCount {
                luts: 2,
                dsps: 3,
                ..ResourceCount::ZERO
            },
        ];
        let total: ResourceCount = parts.into_iter().sum();
        assert_eq!(total.luts, 3);
        assert_eq!(total.dsps, 3);
    }
}
