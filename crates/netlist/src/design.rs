//! Top-level designs: compositions of module instances.

use crate::module::Module;
use crate::net::Route;
use crate::port::{Direction, PortId};
use crate::NetlistError;
use pi_fabric::{Device, ResourceCount, TileCoord};
use serde::{Deserialize, Serialize};

/// Index of an instance within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How the design was produced — drives which implementation steps apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignKind {
    /// One flat netlist, everything unplaced/unrouted: the traditional
    /// monolithic flow's input.
    Flat,
    /// Stitched from locked pre-implemented components; only the
    /// inter-component nets need routing.
    Assembled,
}

/// An instance of a module in the top-level design. Module coordinates are
/// absolute device coordinates (relocation already applied by the stitcher).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleInst {
    pub name: String,
    pub module: Module,
}

/// Token capacity of the standard stream-link FIFO the stitcher places on
/// every inter-component net (the queue half of the paper's Fig. 5 memory
/// controller). The dataflow lint checks computed occupancy bounds against
/// this unless the flow autosizes links (`FlowConfig::with_fifo_autosize`).
pub const DEFAULT_LINK_FIFO_DEPTH: u64 = 64;

/// An inter-instance net created by the stitcher (RapidWright's
/// `createNet` + port connection). Endpoints are (instance, port) pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopNet {
    pub name: String,
    pub source: (InstId, PortId),
    pub sinks: Vec<(InstId, PortId)>,
    pub width: u16,
    pub route: Option<Route>,
    /// Pipeline registers inserted on this net (the paper's FF-insertion
    /// fix for long inter-component wires): the wire is broken into this
    /// many register-to-register segments. 1 = unpipelined.
    #[serde(default = "default_stages")]
    pub pipeline_stages: u32,
    /// Token capacity of the link FIFO backing this net. Stitching starts
    /// every net at the standard depth; `FlowConfig::with_fifo_autosize`
    /// overwrites it with the dataflow analysis' computed minimum.
    #[serde(default = "default_fifo_depth")]
    pub fifo_depth: u64,
}

fn default_stages() -> u32 {
    1
}

fn default_fifo_depth() -> u64 {
    DEFAULT_LINK_FIFO_DEPTH
}

impl TopNet {
    pub fn endpoints(&self) -> impl Iterator<Item = (InstId, PortId)> + '_ {
        std::iter::once(self.source).chain(self.sinks.iter().copied())
    }
}

/// A top-level design: what gets implemented and reported on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    pub name: String,
    /// Catalog name of the target device.
    pub device: String,
    pub kind: DesignKind,
    instances: Vec<ModuleInst>,
    top_nets: Vec<TopNet>,
}

impl Design {
    pub fn new(name: impl Into<String>, device: impl Into<String>, kind: DesignKind) -> Self {
        Design {
            name: name.into(),
            device: device.into(),
            kind,
            instances: Vec::new(),
            top_nets: Vec::new(),
        }
    }

    /// A flat design wrapping a single monolithic module.
    pub fn flat(name: impl Into<String>, device: impl Into<String>, module: Module) -> Self {
        let mut d = Design::new(name, device, DesignKind::Flat);
        d.add_instance("top", module);
        d
    }

    /// Add an instance, returning its id.
    pub fn add_instance(&mut self, name: impl Into<String>, module: Module) -> InstId {
        let id = InstId(self.instances.len() as u32);
        self.instances.push(ModuleInst {
            name: name.into(),
            module,
        });
        id
    }

    pub fn instances(&self) -> &[ModuleInst] {
        &self.instances
    }

    pub fn instances_mut(&mut self) -> &mut [ModuleInst] {
        &mut self.instances
    }

    pub fn instance(&self, id: InstId) -> &ModuleInst {
        &self.instances[id.index()]
    }

    pub fn instance_mut(&mut self, id: InstId) -> &mut ModuleInst {
        &mut self.instances[id.index()]
    }

    pub fn top_nets(&self) -> &[TopNet] {
        &self.top_nets
    }

    pub fn top_nets_mut(&mut self) -> &mut [TopNet] {
        &mut self.top_nets
    }

    /// Create an inter-instance net. Validates direction compatibility:
    /// source must be an output port, sinks must be input ports.
    pub fn connect_top(
        &mut self,
        name: impl Into<String>,
        source: (InstId, PortId),
        sinks: Vec<(InstId, PortId)>,
        width: u16,
    ) -> Result<usize, NetlistError> {
        let name = name.into();
        let check = |(inst, port): (InstId, PortId), want: Direction| -> Result<(), NetlistError> {
            let mi = self
                .instances
                .get(inst.index())
                .ok_or_else(|| NetlistError::DanglingRef(format!("net {name}: instance")))?;
            let p = mi
                .module
                .ports()
                .get(port.index())
                .ok_or_else(|| NetlistError::DanglingRef(format!("net {name}: port")))?;
            if p.dir != want {
                return Err(NetlistError::BadNet(format!(
                    "net {name}: port {}.{} has wrong direction",
                    mi.name, p.name
                )));
            }
            Ok(())
        };
        check(source, Direction::Output)?;
        if sinks.is_empty() {
            return Err(NetlistError::BadNet(format!("net {name}: no sinks")));
        }
        for &s in &sinks {
            check(s, Direction::Input)?;
        }
        self.top_nets.push(TopNet {
            name,
            source,
            sinks,
            width,
            route: None,
            pipeline_stages: 1,
            fifo_depth: DEFAULT_LINK_FIFO_DEPTH,
        });
        Ok(self.top_nets.len() - 1)
    }

    /// Absolute coordinate of a top-net endpoint: the instance port's
    /// partition pin (already in device coordinates).
    pub fn top_endpoint_coord(&self, (inst, port): (InstId, PortId)) -> Option<TileCoord> {
        self.instances[inst.index()].module.ports()[port.index()].partpin
    }

    /// Total logic resources over all instances.
    pub fn resources(&self) -> ResourceCount {
        self.instances.iter().map(|i| i.module.resources()).sum()
    }

    /// Utilization against a device's totals.
    pub fn utilization(&self, device: &Device) -> pi_fabric::resources::ResourcePercent {
        self.resources().percent_of(&device.totals())
    }

    /// True when all intra-module nets and all top nets are routed.
    pub fn fully_routed(&self) -> bool {
        self.instances.iter().all(|i| i.module.fully_routed())
            && self.top_nets.iter().all(|n| n.route.is_some())
    }

    /// Number of unrouted nets (the work remaining for the final router).
    pub fn unrouted_nets(&self) -> usize {
        let intra: usize = self
            .instances
            .iter()
            .map(|i| {
                i.module
                    .nets()
                    .iter()
                    .filter(|n| !n.is_clock && n.route.is_none())
                    .count()
            })
            .sum();
        intra + self.top_nets.iter().filter(|n| n.route.is_none()).count()
    }

    /// Total cell count across instances.
    pub fn cell_count(&self) -> usize {
        self.instances.iter().map(|i| i.module.cells().len()).sum()
    }

    /// Total net count (intra + top).
    pub fn net_count(&self) -> usize {
        self.instances
            .iter()
            .map(|i| i.module.nets().len())
            .sum::<usize>()
            + self.top_nets.len()
    }

    /// Structural validation of every instance and top net.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for inst in &self.instances {
            inst.module.validate()?;
        }
        for net in &self.top_nets {
            for (inst, port) in net.endpoints() {
                let mi = self
                    .instances
                    .get(inst.index())
                    .ok_or_else(|| NetlistError::DanglingRef(format!("top net {}", net.name)))?;
                if port.index() >= mi.module.ports().len() {
                    return Err(NetlistError::DanglingRef(format!(
                        "top net {} references missing port on {}",
                        net.name, mi.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellKind};
    use crate::module::ModuleBuilder;
    use crate::net::Endpoint;
    use crate::port::StreamRole;

    fn leaf(name: &str) -> Module {
        let mut b = ModuleBuilder::new(name);
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("ni", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("no", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn assemble_two_instances() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let b = d.add_instance("b", leaf("b"));
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (in_b, _) = d.instance(b).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, out_a), vec![(b, in_b)], 8)
            .unwrap();
        assert_eq!(d.top_nets().len(), 1);
        assert_eq!(d.cell_count(), 2);
        assert!(d.validate().is_ok());
        assert_eq!(d.resources().luts, 16);
    }

    #[test]
    fn connect_top_checks_directions() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let b = d.add_instance("b", leaf("b"));
        let (in_a, _) = d.instance(a).module.port_by_name("din").unwrap();
        let (in_b, _) = d.instance(b).module.port_by_name("din").unwrap();
        // Input port as source must fail.
        assert!(d.connect_top("bad", (a, in_a), vec![(b, in_b)], 8).is_err());
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (out_b, _) = d.instance(b).module.port_by_name("dout").unwrap();
        // Output port as sink must fail.
        assert!(d
            .connect_top("bad2", (a, out_a), vec![(b, out_b)], 8)
            .is_err());
        // Empty sinks must fail.
        assert!(d.connect_top("bad3", (a, out_a), vec![], 8).is_err());
    }

    #[test]
    fn unrouted_accounting() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let b = d.add_instance("b", leaf("b"));
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (in_b, _) = d.instance(b).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, out_a), vec![(b, in_b)], 8)
            .unwrap();
        // 2 intra nets per leaf + 1 top net, all unrouted.
        assert_eq!(d.unrouted_nets(), 5);
        assert!(!d.fully_routed());
    }

    #[test]
    fn flat_wrapper() {
        let d = Design::flat("base", "test-part", leaf("top"));
        assert_eq!(d.kind, DesignKind::Flat);
        assert_eq!(d.instances().len(), 1);
    }

    #[test]
    fn pipeline_stages_default_to_one_and_survive_serde() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let b = d.add_instance("b", leaf("b"));
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (in_b, _) = d.instance(b).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, out_a), vec![(b, in_b)], 8)
            .unwrap();
        assert_eq!(d.top_nets()[0].pipeline_stages, 1);
        d.top_nets_mut()[0].pipeline_stages = 5;
        let json = serde_json::to_string(&d).unwrap();
        let back: Design = serde_json::from_str(&json).unwrap();
        assert_eq!(back.top_nets()[0].pipeline_stages, 5);
        // A serialized TopNet missing the field decodes with the default.
        let stripped = json.replace(",\"pipeline_stages\":5", "");
        let legacy: Design = serde_json::from_str(&stripped).unwrap();
        assert_eq!(legacy.top_nets()[0].pipeline_stages, 1);
    }

    #[test]
    fn top_endpoint_coords_track_partpins() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        assert_eq!(d.top_endpoint_coord((a, out_a)), None);
        d.instance_mut(a).module.ports_mut().unwrap()[out_a.index()].partpin =
            Some(TileCoord::new(3, 4));
        assert_eq!(d.top_endpoint_coord((a, out_a)), Some(TileCoord::new(3, 4)));
    }

    #[test]
    fn cell_and_net_counts_aggregate_over_instances() {
        let mut d = Design::new("d", "test-part", DesignKind::Assembled);
        let a = d.add_instance("a", leaf("a"));
        let b = d.add_instance("b", leaf("b"));
        let (out_a, _) = d.instance(a).module.port_by_name("dout").unwrap();
        let (in_b, _) = d.instance(b).module.port_by_name("din").unwrap();
        d.connect_top("link", (a, out_a), vec![(b, in_b)], 8)
            .unwrap();
        assert_eq!(d.cell_count(), 2);
        // 2 intra nets per leaf + 1 top net.
        assert_eq!(d.net_count(), 5);
    }
}
