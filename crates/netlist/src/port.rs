//! Module boundary ports and partition pins.

use pi_fabric::TileCoord;
use serde::{Deserialize, Serialize};

/// Index of a port within its [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u32);

impl PortId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Port direction, seen from inside the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    Input,
    Output,
}

/// The streaming-interface role a port plays in the paper's component
/// contract: every pre-implemented component exposes a *source* interface
/// (memory controller feeding its compute units) and a *sink* interface
/// (writing feature maps back), plus clock/control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamRole {
    /// Data into the component (paper: "source" side).
    Source,
    /// Data out of the component (paper: "sink" side).
    Sink,
    /// Clock input. Routed via clock resources, not general fabric.
    Clock,
    /// Handshake/control (FIFO valid/ready, enables).
    Control,
}

/// A boundary port of a module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Port {
    pub name: String,
    pub dir: Direction,
    pub role: StreamRole,
    /// Bus width in bits. Widths only affect congestion estimation — the
    /// netlist carries one logical net per bus.
    pub width: u16,
    /// Partition pin: the module-local interconnect tile the boundary net is
    /// committed to. Planning these is the paper's "strategic port planning"
    /// step; `None` models the un-planned case (ports land wherever the
    /// pblock put them).
    pub partpin: Option<TileCoord>,
}

impl Port {
    pub fn new(name: impl Into<String>, dir: Direction, role: StreamRole, width: u16) -> Self {
        Port {
            name: name.into(),
            dir,
            role,
            width,
            partpin: None,
        }
    }

    /// Builder-style: commit the port to an interconnect tile.
    pub fn at(mut self, partpin: TileCoord) -> Self {
        self.partpin = Some(partpin);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_construction() {
        let p = Port::new("din", Direction::Input, StreamRole::Source, 16).at(TileCoord::new(0, 4));
        assert_eq!(p.width, 16);
        assert_eq!(p.partpin, Some(TileCoord::new(0, 4)));
        assert_eq!(p.dir, Direction::Input);
    }
}
