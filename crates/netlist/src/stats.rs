//! Netlist analysis: the summary numbers implementation engineers read
//! before and after physical design — cell mix, fanout distribution, and
//! (once placed) net-length distribution.

use crate::module::Module;
use crate::net::Endpoint;
use serde::Serialize;

/// Cell-population summary of a module.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CellMix {
    pub slices: usize,
    pub dsps: usize,
    pub brams: usize,
    pub urams: usize,
    pub iobufs: usize,
    /// Cells with unregistered outputs (combinational logic).
    pub combinational: usize,
    /// Cells frozen by logic locking.
    pub fixed: usize,
}

/// Distribution summary over a set of integer samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Distribution {
    pub count: usize,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
}

impl Distribution {
    /// Summarize samples (consumed; sorted internally).
    pub fn of(mut samples: Vec<u64>) -> Distribution {
        if samples.is_empty() {
            return Distribution::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u64 = samples.iter().sum();
        let rank = ((count as f64 * 0.95).ceil() as usize).clamp(1, count);
        Distribution {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: sum as f64 / count as f64,
            p95: samples[rank - 1],
        }
    }
}

/// Full analysis of one module.
#[derive(Debug, Clone, Serialize)]
pub struct ModuleStats {
    pub cells: CellMix,
    pub nets: usize,
    pub ports: usize,
    /// Sinks per net.
    pub fanout: Distribution,
    /// HPWL per placed net, tiles (empty distribution when unplaced).
    pub net_length: Distribution,
    /// Fraction of nets with a committed route.
    pub routed_fraction: f64,
}

/// Analyze a module.
pub fn module_stats(module: &Module) -> ModuleStats {
    let mut mix = CellMix::default();
    for cell in module.cells() {
        match cell.kind {
            crate::cell::CellKind::Slice { .. } => mix.slices += 1,
            crate::cell::CellKind::Dsp => mix.dsps += 1,
            crate::cell::CellKind::Bram => mix.brams += 1,
            crate::cell::CellKind::Uram => mix.urams += 1,
            crate::cell::CellKind::IoBuf => mix.iobufs += 1,
        }
        if !cell.registered {
            mix.combinational += 1;
        }
        if cell.fixed {
            mix.fixed += 1;
        }
    }

    let mut fanouts = Vec::with_capacity(module.nets().len());
    let mut lengths = Vec::new();
    let mut routed = 0usize;
    let mut routable = 0usize;
    for net in module.nets() {
        if net.is_clock {
            continue;
        }
        routable += 1;
        fanouts.push(net.sinks.len() as u64);
        if net.route.is_some() {
            routed += 1;
        }
        let pts: Vec<pi_fabric::TileCoord> = net
            .endpoints()
            .filter_map(|e| match e {
                Endpoint::Cell(c) => module.cells()[c.index()].placement,
                Endpoint::Port(p) => module.ports()[p.index()].partpin,
            })
            .collect();
        if pts.len() >= 2 {
            lengths.push(u64::from(pi_fabric::coords::hpwl(&pts)));
        }
    }

    ModuleStats {
        cells: mix,
        nets: module.nets().len(),
        ports: module.ports().len(),
        fanout: Distribution::of(fanouts),
        net_length: Distribution::of(lengths),
        routed_fraction: if routable == 0 {
            0.0
        } else {
            routed as f64 / routable as f64
        },
    }
}

impl std::fmt::Display for ModuleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cells: {} slices, {} DSPs, {} BRAMs, {} URAMs, {} IOBs ({} comb, {} fixed)",
            self.cells.slices,
            self.cells.dsps,
            self.cells.brams,
            self.cells.urams,
            self.cells.iobufs,
            self.cells.combinational,
            self.cells.fixed
        )?;
        writeln!(
            f,
            "nets: {} ({} ports); fanout mean {:.1} max {}; {:.0}% routed",
            self.nets,
            self.ports,
            self.fanout.mean,
            self.fanout.max,
            self.routed_fraction * 100.0
        )?;
        if self.net_length.count > 0 {
            writeln!(
                f,
                "net length (tiles): mean {:.1}, p95 {}, max {}",
                self.net_length.mean, self.net_length.p95, self.net_length.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellKind};
    use crate::module::ModuleBuilder;
    use crate::port::StreamRole;
    use pi_fabric::TileCoord;

    fn sample_module() -> Module {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let a = b.cell(Cell::new("a", CellKind::full_slice()));
        let k = b.cell(Cell::new("k", CellKind::full_slice()).combinational());
        let d = b.cell(Cell::new("d", CellKind::Dsp));
        let r = b.cell(Cell::new("r", CellKind::Bram));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect(
            "fan",
            Endpoint::Cell(a),
            [Endpoint::Cell(k), Endpoint::Cell(d), Endpoint::Cell(r)],
        );
        b.connect("o", Endpoint::Cell(r), [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn cell_mix_counts_kinds_and_flags() {
        let m = sample_module();
        let s = module_stats(&m);
        assert_eq!(s.cells.slices, 2);
        assert_eq!(s.cells.dsps, 1);
        assert_eq!(s.cells.brams, 1);
        assert_eq!(s.cells.combinational, 1);
        assert_eq!(s.cells.fixed, 0);
        assert_eq!(s.nets, 3);
        assert_eq!(s.ports, 2);
    }

    #[test]
    fn fanout_distribution() {
        let m = sample_module();
        let s = module_stats(&m);
        assert_eq!(s.fanout.count, 3);
        assert_eq!(s.fanout.max, 3);
        assert_eq!(s.fanout.min, 1);
        assert!((s.fanout.mean - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn net_lengths_appear_once_placed() {
        let mut m = sample_module();
        let s = module_stats(&m);
        assert_eq!(s.net_length.count, 0);
        for (i, at) in [(0u32, (1, 1)), (1, (4, 1)), (2, (8, 1)), (3, (9, 5))] {
            m.set_placement(crate::CellId(i), TileCoord::new(at.0, at.1))
                .unwrap();
        }
        let s = module_stats(&m);
        // "fan" net: cells a,k,d,r -> bbox (1..9, 1..5) = 12.
        assert_eq!(s.net_length.count, 1);
        assert_eq!(s.net_length.max, 12);
        assert_eq!(s.routed_fraction, 0.0);
    }

    #[test]
    fn distribution_of_edge_cases() {
        assert_eq!(Distribution::of(vec![]), Distribution::default());
        let d = Distribution::of(vec![7]);
        assert_eq!((d.min, d.max, d.p95, d.count), (7, 7, 7, 1));
        let d = Distribution::of((1..=100).collect());
        assert_eq!(d.p95, 95);
        assert!((d.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn display_renders_all_sections() {
        let m = sample_module();
        let text = module_stats(&m).to_string();
        assert!(text.contains("2 slices"));
        assert!(text.contains("1 comb"));
        assert!(text.contains("fanout mean"));
    }
}
