//! Design checkpoints: serialized placed-and-routed modules plus metadata.
//!
//! Checkpoints are stored as JSON so the component database is inspectable
//! the way a directory of DCP files is — each file is a frozen, reusable,
//! relocatable implementation of one component.

use crate::module::Module;
use pi_fabric::{Pblock, ResourceCount};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Metadata recorded with a checkpoint at pre-implementation time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// The component signature used for database matching, e.g.
    /// `conv_k5s1p0_ci1_co6_in32`. Produced by the synthesis generators and
    /// matched against DFG nodes by the stitcher.
    pub signature: String,
    /// Fmax achieved in standalone OOC implementation, MHz.
    pub fmax_mhz: f64,
    /// Logic resources of the module.
    pub resources: ResourceCount,
    /// The pblock the module was implemented in (absolute coordinates of the
    /// original implementation; relocation translates it).
    pub pblock: Pblock,
    /// Device catalog name the checkpoint targets — relocation is only valid
    /// on the same part.
    pub device: String,
    /// Pipeline latency of the component in clock cycles (for the latency
    /// model).
    pub latency_cycles: u64,
}

/// A checkpoint: metadata plus the locked module netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub meta: CheckpointMeta,
    pub module: Module,
}

impl Checkpoint {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, crate::NetlistError> {
        serde_json::to_string(self).map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Checkpoint, crate::NetlistError> {
        serde_json::from_str(s).map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), crate::NetlistError> {
        let json = self.to_json()?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Checkpoint, crate::NetlistError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellKind};
    use crate::module::ModuleBuilder;
    use crate::net::Endpoint;
    use crate::port::StreamRole;
    use pi_fabric::TileCoord;

    fn checkpoint() -> Checkpoint {
        let mut b = ModuleBuilder::new("conv1");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("mac", CellKind::Dsp));
        b.connect("ni", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("no", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        m.set_placement(crate::CellId(0), TileCoord::new(8, 3))
            .unwrap();
        m.pblock = Some(Pblock::new(1, 8, 0, 9));
        m.lock();
        Checkpoint {
            meta: CheckpointMeta {
                signature: "conv_k5s1p0_ci1_co6_in32".to_string(),
                fmax_mhz: 562.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 8, 0, 9),
                device: "test-part".to_string(),
                latency_cycles: 21,
            },
            module: m,
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = checkpoint();
        let json = cp.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.meta.signature, cp.meta.signature);
        assert_eq!(back.meta.fmax_mhz, cp.meta.fmax_mhz);
        assert_eq!(back.module.cells().len(), 1);
        assert!(back.module.locked);
        assert_eq!(
            back.module.cell(crate::CellId(0)).placement,
            Some(TileCoord::new(8, 3))
        );
    }

    #[test]
    fn file_round_trip() {
        let cp = checkpoint();
        let dir = std::env::temp_dir().join("pi_netlist_dcp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conv1.dcp.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.meta.latency_cycles, 21);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Checkpoint::from_json("{not json").is_err());
        assert!(Checkpoint::load(Path::new("/nonexistent/x.json")).is_err());
    }
}
