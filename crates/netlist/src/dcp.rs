//! Design checkpoints: serialized placed-and-routed modules plus metadata.
//!
//! Checkpoints are stored as JSON so the component database is inspectable
//! the way a directory of DCP files is — each file is a frozen, reusable,
//! relocatable implementation of one component.

use crate::hash::fnv1a64;
use crate::module::Module;
use pi_fabric::{Pblock, ResourceCount};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk checkpoint format version. Bump whenever the serialized shape
/// of [`Checkpoint`] (or anything it contains) changes incompatibly; the
/// component-database cache quarantines and rebuilds entries written by a
/// different version instead of trying to reinterpret them.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Metadata recorded with a checkpoint at pre-implementation time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// The component signature used for database matching, e.g.
    /// `conv_k5s1p0_ci1_co6_in32`. Produced by the synthesis generators and
    /// matched against DFG nodes by the stitcher.
    pub signature: String,
    /// Fmax achieved in standalone OOC implementation, MHz.
    pub fmax_mhz: f64,
    /// Logic resources of the module.
    pub resources: ResourceCount,
    /// The pblock the module was implemented in (absolute coordinates of the
    /// original implementation; relocation translates it).
    pub pblock: Pblock,
    /// Device catalog name the checkpoint targets — relocation is only valid
    /// on the same part.
    pub device: String,
    /// Pipeline latency of the component in clock cycles (for the latency
    /// model).
    pub latency_cycles: u64,
}

/// A checkpoint: metadata plus the locked module netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub meta: CheckpointMeta,
    pub module: Module,
}

/// The versioned envelope the persistent component cache stores: the
/// format version rides *outside* the checkpoint so stale entries are
/// detectable before (and independent of) decoding the payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct VersionedCheckpoint {
    format_version: u32,
    checkpoint: Checkpoint,
}

impl Checkpoint {
    /// Stable 64-bit content hash of this checkpoint: FNV-1a over the
    /// canonical JSON serialization. Equal checkpoints hash equal across
    /// runs and builds; the cache uses it for content addressing and
    /// corruption detection.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(
            self.to_json()
                .expect("checkpoint serializes for hashing")
                .as_bytes(),
        )
    }

    /// [`Checkpoint::content_hash`] as the fixed-width hex form file names
    /// and manifests use.
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// Serialize wrapped in the versioned envelope (the persistent-cache
    /// on-disk form).
    pub fn to_versioned_json(&self) -> Result<String, crate::NetlistError> {
        serde_json::to_string(&VersionedCheckpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            checkpoint: self.clone(),
        })
        .map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }

    /// Deserialize the versioned envelope. A missing or non-integer
    /// version is a decode error; a *different* version is the distinct
    /// [`crate::NetlistError::FormatVersion`] so callers can tell "stale"
    /// from "corrupt".
    pub fn from_versioned_json(s: &str) -> Result<Checkpoint, crate::NetlistError> {
        let value: serde_json::Value =
            serde_json::from_str(s).map_err(|e| crate::NetlistError::Decode(e.to_string()))?;
        let found = match value.get("format_version") {
            Some(serde_json::Value::U64(v)) => *v as u32,
            Some(serde_json::Value::I64(v)) => *v as u32,
            _ => {
                return Err(crate::NetlistError::Decode(
                    "checkpoint envelope has no format_version".to_string(),
                ))
            }
        };
        if found != CHECKPOINT_FORMAT_VERSION {
            return Err(crate::NetlistError::FormatVersion {
                found,
                want: CHECKPOINT_FORMAT_VERSION,
            });
        }
        let inner = value.get("checkpoint").cloned().ok_or_else(|| {
            crate::NetlistError::Decode("checkpoint envelope has no payload".to_string())
        })?;
        serde_json::from_value(inner).map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, crate::NetlistError> {
        serde_json::to_string(self).map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Checkpoint, crate::NetlistError> {
        serde_json::from_str(s).map_err(|e| crate::NetlistError::Decode(e.to_string()))
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), crate::NetlistError> {
        let json = self.to_json()?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Checkpoint, crate::NetlistError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellKind};
    use crate::module::ModuleBuilder;
    use crate::net::Endpoint;
    use crate::port::StreamRole;
    use pi_fabric::TileCoord;

    fn checkpoint() -> Checkpoint {
        let mut b = ModuleBuilder::new("conv1");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("mac", CellKind::Dsp));
        b.connect("ni", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("no", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        m.set_placement(crate::CellId(0), TileCoord::new(8, 3))
            .unwrap();
        m.pblock = Some(Pblock::new(1, 8, 0, 9));
        m.lock();
        Checkpoint {
            meta: CheckpointMeta {
                signature: "conv_k5s1p0_ci1_co6_in32".to_string(),
                fmax_mhz: 562.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 8, 0, 9),
                device: "test-part".to_string(),
                latency_cycles: 21,
            },
            module: m,
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = checkpoint();
        let json = cp.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.meta.signature, cp.meta.signature);
        assert_eq!(back.meta.fmax_mhz, cp.meta.fmax_mhz);
        assert_eq!(back.module.cells().len(), 1);
        assert!(back.module.locked);
        assert_eq!(
            back.module.cell(crate::CellId(0)).placement,
            Some(TileCoord::new(8, 3))
        );
    }

    #[test]
    fn file_round_trip() {
        let cp = checkpoint();
        let dir = std::env::temp_dir().join("pi_netlist_dcp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conv1.dcp.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.meta.latency_cycles, 21);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Checkpoint::from_json("{not json").is_err());
        assert!(Checkpoint::load(Path::new("/nonexistent/x.json")).is_err());
    }

    #[test]
    fn versioned_round_trip() {
        let cp = checkpoint();
        let json = cp.to_versioned_json().unwrap();
        assert!(json.contains("\"format_version\""));
        let back = Checkpoint::from_versioned_json(&json).unwrap();
        assert_eq!(back.meta.signature, cp.meta.signature);
        assert_eq!(back.content_hash(), cp.content_hash());
    }

    #[test]
    fn stale_format_version_is_its_own_error() {
        let cp = checkpoint();
        let json = cp.to_versioned_json().unwrap();
        let stale = json.replacen(
            &format!("\"format_version\":{CHECKPOINT_FORMAT_VERSION}"),
            "\"format_version\":999",
            1,
        );
        match Checkpoint::from_versioned_json(&stale) {
            Err(crate::NetlistError::FormatVersion { found: 999, want }) => {
                assert_eq!(want, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected FormatVersion, got {other:?}"),
        }
        // A plain (unversioned) checkpoint is a decode error, not stale.
        assert!(matches!(
            Checkpoint::from_versioned_json(&cp.to_json().unwrap()),
            Err(crate::NetlistError::Decode(_))
        ));
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let cp = checkpoint();
        assert_eq!(cp.content_hash(), cp.content_hash());
        assert_eq!(cp.content_hash_hex().len(), 16);
        let mut other = cp.clone();
        other.meta.fmax_mhz += 1.0;
        assert_ne!(cp.content_hash(), other.content_hash());
    }
}
