//! Logical/physical netlist data structures and checkpoint files.
//!
//! This crate plays the role Vivado's in-memory design database and DCP files
//! play in the paper's flow:
//!
//! * [`Module`] — a netlist of site-level [`Cell`]s connected by [`Net`]s,
//!   with boundary [`Port`]s that may carry **partition pins** (the
//!   interconnect-tile anchors the paper plans interface routing around).
//! * [`Design`] — a top-level composition of module instances plus the
//!   inter-module nets the stitcher creates; supports both the *flat*
//!   (monolithic baseline) and *assembled* (pre-implemented) shapes.
//! * [`Checkpoint`] — a serialized placed-and-routed module with metadata
//!   (achieved Fmax, resources, pblock): the DCP the component database
//!   stores and the stitcher consumes.
//!
//! Cells are *site-granular*: one cell occupies one site (a SLICE, a DSP48,
//! a RAMB36...). Raw LUT/FF counts live inside [`CellKind::Slice`] so
//! utilization reports stay exact while placement and routing work on ~10x
//! fewer objects.

pub mod cell;
pub mod dcp;
pub mod design;
pub mod hash;
pub mod module;
pub mod net;
pub mod port;
pub mod stats;

pub use cell::{Cell, CellId, CellKind};
pub use dcp::{Checkpoint, CheckpointMeta, CHECKPOINT_FORMAT_VERSION};
pub use design::{Design, DesignKind, InstId, ModuleInst, TopNet, DEFAULT_LINK_FIFO_DEPTH};
pub use hash::{fnv1a64, StableHasher};
pub use module::{Module, ModuleBuilder};
pub use net::{Endpoint, Net, NetId, Route};
pub use port::{Direction, Port, PortId, StreamRole};
pub use stats::{module_stats, ModuleStats};

/// Errors produced by netlist construction and checkpoint I/O.
#[derive(Debug)]
pub enum NetlistError {
    /// Referenced an id that does not exist in the module.
    DanglingRef(String),
    /// A net was constructed with no source or an output-port source, etc.
    BadNet(String),
    /// Attempted to mutate a locked module.
    Locked(String),
    /// Checkpoint (de)serialization failure.
    Io(std::io::Error),
    /// Checkpoint decode failure.
    Decode(String),
    /// A persisted checkpoint carries a different format version than this
    /// build writes — stale entries are rebuilt, never reinterpreted.
    FormatVersion { found: u32, want: u32 },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DanglingRef(m) => write!(f, "dangling reference: {m}"),
            NetlistError::BadNet(m) => write!(f, "malformed net: {m}"),
            NetlistError::Locked(m) => write!(f, "module is locked: {m}"),
            NetlistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            NetlistError::Decode(m) => write!(f, "checkpoint decode error: {m}"),
            NetlistError::FormatVersion { found, want } => write!(
                f,
                "checkpoint format version {found} does not match this build's {want}"
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        NetlistError::Io(e)
    }
}
