//! Stable hashing for content addressing and cache keys.
//!
//! `std::hash` makes no cross-run (or cross-version) stability promise, so
//! everything persisted to disk — checkpoint content hashes, component
//! cache keys, collision-free file stems — hashes through this FNV-1a
//! 64-bit implementation instead. The encoding is explicit about field
//! boundaries (every write is terminated) so concatenation ambiguities
//! ("ab"+"c" vs "a"+"bc") cannot collide.

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x100000001b3;

/// An incremental FNV-1a 64-bit hasher with typed, delimited writes.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    pub fn new() -> Self {
        StableHasher { state: OFFSET }
    }

    /// Raw bytes, no terminator — the primitive the typed writes build on.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// A string, terminated by its length so adjacent writes cannot merge.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_u64(s.len() as u64);
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// An `f64` by bit pattern: equal bits hash equal, and any knob change
    /// that alters the value alters the hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// An optional `f64`: presence is part of the encoding.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.write_bool(true);
                self.write_f64(x);
            }
            None => self.write_bool(false),
        }
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn string_writes_are_delimited() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_presence_is_encoded() {
        let mut a = StableHasher::new();
        a.write_opt_f64(None);
        let mut b = StableHasher::new();
        b.write_opt_f64(Some(0.0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_across_invocations() {
        let h = |x: f64| {
            let mut h = StableHasher::new();
            h.write_str("knob");
            h.write_f64(x);
            h.finish()
        };
        assert_eq!(h(0.7), h(0.7));
        assert_ne!(h(0.7), h(0.70001));
    }
}
