//! Nets: point-to-multipoint connections between cells and ports.

use crate::cell::CellId;
use crate::port::PortId;
use pi_fabric::TileCoord;
use serde::{Deserialize, Serialize};

/// Index of a net within its [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One endpoint of a net: either an internal cell or a boundary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    Cell(CellId),
    Port(PortId),
}

/// A committed routing path: the sequence of tiles the net's wires occupy.
/// Produced by the router; preserved verbatim for locked modules.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    pub tiles: Vec<TileCoord>,
}

impl Route {
    /// Wirelength in tiles.
    pub fn length(&self) -> usize {
        self.tiles.len().saturating_sub(1)
    }
}

/// A net of the module netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Net {
    pub name: String,
    pub source: Endpoint,
    pub sinks: Vec<Endpoint>,
    /// Bus width in bits (affects congestion demand).
    pub width: u16,
    /// Committed route; `None` means unrouted. In an assembled design only
    /// the inter-component nets are unrouted — the property that makes the
    /// final routing step cheap.
    pub route: Option<Route>,
    /// Locked routes survive re-implementation untouched.
    pub locked: bool,
    /// Clock nets use dedicated clock routing and are excluded from the
    /// general congestion map.
    pub is_clock: bool,
}

impl Net {
    pub fn new(name: impl Into<String>, source: Endpoint, sinks: Vec<Endpoint>) -> Self {
        Net {
            name: name.into(),
            source,
            sinks,
            width: 1,
            route: None,
            locked: false,
            is_clock: false,
        }
    }

    /// Builder-style: set bus width.
    pub fn with_width(mut self, width: u16) -> Self {
        self.width = width;
        self
    }

    /// Builder-style: mark as clock net.
    pub fn clock(mut self) -> Self {
        self.is_clock = true;
        self
    }

    /// Every endpoint, source first.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        std::iter::once(self.source).chain(self.sinks.iter().copied())
    }

    /// Number of endpoints.
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_iteration() {
        let n = Net::new(
            "n0",
            Endpoint::Cell(CellId(0)),
            vec![Endpoint::Cell(CellId(1)), Endpoint::Port(PortId(0))],
        );
        let eps: Vec<_> = n.endpoints().collect();
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0], Endpoint::Cell(CellId(0)));
        assert_eq!(n.degree(), 3);
    }

    #[test]
    fn route_length() {
        let r = Route {
            tiles: vec![
                TileCoord::new(0, 0),
                TileCoord::new(1, 0),
                TileCoord::new(1, 1),
            ],
        };
        assert_eq!(r.length(), 2);
        assert_eq!(Route::default().length(), 0);
    }
}
