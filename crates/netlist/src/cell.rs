//! Site-level cells.

use pi_fabric::{ResourceCount, SiteKind, TileCoord};
use serde::{Deserialize, Serialize};

/// Index of a cell within its [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a cell is, at site granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// A packed CLB slice: `luts` LUT6 and `ffs` flip-flops in use
    /// (capacity 8/16).
    Slice { luts: u8, ffs: u8 },
    /// One DSP48 multiply-accumulate block.
    Dsp,
    /// One 36 Kb block RAM (ROM, FIFO or line buffer storage).
    Bram,
    /// One UltraRAM block.
    Uram,
    /// An I/O buffer. Only present in non-OOC top-level designs — the OOC
    /// flow's defining property is that these are *not* inserted.
    IoBuf,
}

impl CellKind {
    /// The site kind this cell must be placed on.
    pub const fn site(&self) -> SiteKind {
        match self {
            CellKind::Slice { .. } => SiteKind::Slice,
            CellKind::Dsp => SiteKind::Dsp48,
            CellKind::Bram => SiteKind::Ramb36,
            CellKind::Uram => SiteKind::Uram288,
            CellKind::IoBuf => SiteKind::Iob,
        }
    }

    /// Logic resources consumed by this cell.
    pub fn resources(&self) -> ResourceCount {
        match *self {
            CellKind::Slice { luts, ffs } => ResourceCount {
                luts: u64::from(luts),
                ffs: u64::from(ffs),
                ..ResourceCount::ZERO
            },
            CellKind::Dsp => ResourceCount {
                dsps: 1,
                ..ResourceCount::ZERO
            },
            CellKind::Bram => ResourceCount {
                brams: 1,
                ..ResourceCount::ZERO
            },
            CellKind::Uram => ResourceCount {
                urams: 1,
                ..ResourceCount::ZERO
            },
            CellKind::IoBuf => ResourceCount {
                ios: 1,
                ..ResourceCount::ZERO
            },
        }
    }

    /// A fully used slice.
    pub const fn full_slice() -> CellKind {
        CellKind::Slice { luts: 8, ffs: 16 }
    }
}

/// One cell of a module netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Hierarchical name, for reports and debugging.
    pub name: String,
    pub kind: CellKind,
    /// Intrinsic logic delay through the cell, picoseconds. Set by the
    /// synthesis generators per function (a comparator is faster than a
    /// wide adder chain).
    pub delay_ps: u32,
    /// True when the cell's output is registered — it then terminates a
    /// combinational path for timing analysis.
    pub registered: bool,
    /// Placement, in module-local tile coordinates. For a flat design these
    /// are absolute; for an OOC module the instance anchor translates them.
    pub placement: Option<TileCoord>,
    /// Locked cells must not be moved by the placer (pre-implemented and
    /// frozen per the paper's logic-locking step).
    pub fixed: bool,
}

impl Cell {
    pub fn new(name: impl Into<String>, kind: CellKind) -> Self {
        Cell {
            name: name.into(),
            kind,
            delay_ps: default_delay_ps(kind),
            registered: true,
            placement: None,
            fixed: false,
        }
    }

    /// Builder-style: mark combinational (output not registered).
    pub fn combinational(mut self) -> Self {
        self.registered = false;
        self
    }

    /// Builder-style: override the intrinsic delay.
    pub fn with_delay_ps(mut self, ps: u32) -> Self {
        self.delay_ps = ps;
        self
    }
}

/// Default intrinsic delays per cell kind, picoseconds. Calibrated so that
/// small well-placed modules reach the 300-650 MHz band the paper reports.
pub fn default_delay_ps(kind: CellKind) -> u32 {
    match kind {
        CellKind::Slice { .. } => 150,
        CellKind::Dsp => 550,
        CellKind::Bram => 650,
        CellKind::Uram => 750,
        CellKind::IoBuf => 900,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_and_resources() {
        let s = CellKind::Slice { luts: 5, ffs: 9 };
        assert_eq!(s.site(), SiteKind::Slice);
        let r = s.resources();
        assert_eq!((r.luts, r.ffs), (5, 9));
        assert_eq!(CellKind::Dsp.resources().dsps, 1);
        assert_eq!(CellKind::IoBuf.site(), SiteKind::Iob);
    }

    #[test]
    fn builder_helpers() {
        let c = Cell::new("u0", CellKind::Dsp)
            .combinational()
            .with_delay_ps(123);
        assert!(!c.registered);
        assert_eq!(c.delay_ps, 123);
        assert!(!c.fixed);
        assert!(c.placement.is_none());
    }

    #[test]
    fn default_delays_are_ordered_sensibly() {
        assert!(default_delay_ps(CellKind::full_slice()) < default_delay_ps(CellKind::Dsp));
        assert!(default_delay_ps(CellKind::Dsp) < default_delay_ps(CellKind::Bram));
    }
}
