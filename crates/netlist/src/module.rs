//! Modules: self-contained netlists with boundary ports.

use crate::cell::{Cell, CellId};
use crate::net::{Endpoint, Net, NetId};
use crate::port::{Direction, Port, PortId, StreamRole};
use crate::NetlistError;
use pi_fabric::{Pblock, ResourceCount, TileCoord};
use serde::{Deserialize, Serialize};

/// A netlist module: the unit of synthesis, OOC implementation, checkpointing
/// and reuse.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    /// True once the module's placement and routing are frozen (the paper's
    /// logic-locking step). Locked modules reject further mutation.
    pub locked: bool,
    /// The module-local pblock it was implemented in, if any.
    pub pblock: Option<Pblock>,
    /// Models the HD.CLK_SRC constraint: the clock is partially routed to
    /// the interconnect tiles so OOC timing analysis is meaningful.
    pub clock_prerouted: bool,
}

impl Module {
    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All boundary ports, indexable by [`PortId`].
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Ports with the given stream role.
    pub fn ports_with_role(&self, role: StreamRole) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.role == role)
            .map(|(i, p)| (PortId(i as u32), p))
    }

    /// Find a port by name.
    pub fn port_by_name(&self, name: &str) -> Option<(PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
            .map(|(i, p)| (PortId(i as u32), p))
    }

    /// Total logic resources of the module.
    pub fn resources(&self) -> ResourceCount {
        self.cells.iter().map(|c| c.kind.resources()).sum()
    }

    /// True when every cell has a placement.
    pub fn fully_placed(&self) -> bool {
        self.cells.iter().all(|c| c.placement.is_some())
    }

    /// True when every non-clock net has a route.
    pub fn fully_routed(&self) -> bool {
        self.nets.iter().all(|n| n.is_clock || n.route.is_some())
    }

    /// Set a cell placement. Fails on locked modules or fixed cells.
    pub fn set_placement(&mut self, id: CellId, at: TileCoord) -> Result<(), NetlistError> {
        if self.locked {
            return Err(NetlistError::Locked(self.name.clone()));
        }
        let cell = &mut self.cells[id.index()];
        if cell.fixed {
            return Err(NetlistError::Locked(format!(
                "{}: cell {} is fixed",
                self.name, cell.name
            )));
        }
        cell.placement = Some(at);
        Ok(())
    }

    /// Mutable access for the implementation tools. Fails when locked.
    pub fn cells_mut(&mut self) -> Result<&mut [Cell], NetlistError> {
        if self.locked {
            return Err(NetlistError::Locked(self.name.clone()));
        }
        Ok(&mut self.cells)
    }

    /// Mutable net access for the router. Fails when locked.
    pub fn nets_mut(&mut self) -> Result<&mut [Net], NetlistError> {
        if self.locked {
            return Err(NetlistError::Locked(self.name.clone()));
        }
        Ok(&mut self.nets)
    }

    /// Mutable port access (for partition-pin planning). Fails when locked.
    pub fn ports_mut(&mut self) -> Result<&mut [Port], NetlistError> {
        if self.locked {
            return Err(NetlistError::Locked(self.name.clone()));
        }
        Ok(&mut self.ports)
    }

    /// Freeze placement and routing: cells become fixed, nets locked, module
    /// rejects mutation. This is the paper's logic-locking step — the final
    /// inter-module routing will then only consider non-routed nets.
    pub fn lock(&mut self) {
        for c in &mut self.cells {
            c.fixed = true;
        }
        for n in &mut self.nets {
            if n.route.is_some() {
                n.locked = true;
            }
        }
        self.locked = true;
    }

    /// A copy translated by (dcol, drow): placements, routes, partition pins
    /// and the pblock all shift together. Works on locked modules — this is
    /// exactly what relocation of a pre-implemented component does. Returns
    /// `None` if any coordinate would leave the grid's coordinate space.
    pub fn translated(&self, dcol: i32, drow: i32) -> Option<Module> {
        let mut m = self.clone();
        for c in &mut m.cells {
            if let Some(p) = c.placement {
                c.placement = Some(p.translated(dcol, drow)?);
            }
        }
        for n in &mut m.nets {
            if let Some(r) = &mut n.route {
                for t in &mut r.tiles {
                    *t = t.translated(dcol, drow)?;
                }
            }
        }
        for p in &mut m.ports {
            if let Some(pp) = p.partpin {
                p.partpin = Some(pp.translated(dcol, drow)?);
            }
        }
        if let Some(pb) = m.pblock {
            m.pblock = Some(pb.translated(dcol, drow)?);
        }
        Some(m)
    }

    /// Sum of placed-endpoint HPWL over all non-clock nets — the classic
    /// wirelength figure of merit.
    pub fn wirelength(&self) -> u64 {
        self.nets
            .iter()
            .filter(|n| !n.is_clock)
            .map(|n| {
                let pts: Vec<TileCoord> = n
                    .endpoints()
                    .filter_map(|e| self.endpoint_coord(e))
                    .collect();
                u64::from(pi_fabric::coords::hpwl(&pts))
            })
            .sum()
    }

    /// The physical coordinate of an endpoint: cell placement or port
    /// partition pin.
    pub fn endpoint_coord(&self, e: Endpoint) -> Option<TileCoord> {
        match e {
            Endpoint::Cell(c) => self.cells[c.index()].placement,
            Endpoint::Port(p) => self.ports[p.index()].partpin,
        }
    }

    /// Structural validation: all endpoints resolve, sources drive, sinks
    /// receive.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.sinks.is_empty() {
                return Err(NetlistError::BadNet(format!(
                    "{}: net {} has no sinks",
                    self.name, net.name
                )));
            }
            for e in net.endpoints() {
                match e {
                    Endpoint::Cell(c) if c.index() >= self.cells.len() => {
                        return Err(NetlistError::DanglingRef(format!(
                            "{}: net {} references missing cell {}",
                            self.name,
                            net.name,
                            c.index()
                        )))
                    }
                    Endpoint::Port(p) if p.index() >= self.ports.len() => {
                        return Err(NetlistError::DanglingRef(format!(
                            "{}: net {} references missing port {}",
                            self.name,
                            net.name,
                            p.index()
                        )))
                    }
                    _ => {}
                }
            }
            if let Endpoint::Port(p) = net.source {
                if self.ports[p.index()].dir == Direction::Output {
                    return Err(NetlistError::BadNet(format!(
                        "{}: net {} sourced by output port {}",
                        self.name,
                        net.name,
                        self.ports[p.index()].name
                    )));
                }
            }
            for s in &net.sinks {
                if let Endpoint::Port(p) = s {
                    if self.ports[p.index()].dir == Direction::Input {
                        return Err(NetlistError::BadNet(format!(
                            "{}: net {} sinks into input port {}",
                            self.name,
                            net.name,
                            self.ports[p.index()].name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental module construction used by the synthesis generators.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module {
                name: name.into(),
                cells: Vec::new(),
                nets: Vec::new(),
                ports: Vec::new(),
                locked: false,
                pblock: None,
                clock_prerouted: false,
            },
        }
    }

    /// Add a cell, returning its id.
    pub fn cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.module.cells.len() as u32);
        self.module.cells.push(cell);
        id
    }

    /// Add an input port.
    pub fn input(&mut self, name: impl Into<String>, role: StreamRole, width: u16) -> PortId {
        self.port(Port::new(name, Direction::Input, role, width))
    }

    /// Add an output port.
    pub fn output(&mut self, name: impl Into<String>, role: StreamRole, width: u16) -> PortId {
        self.port(Port::new(name, Direction::Output, role, width))
    }

    /// Add a fully specified port.
    pub fn port(&mut self, port: Port) -> PortId {
        let id = PortId(self.module.ports.len() as u32);
        self.module.ports.push(port);
        id
    }

    /// Connect a source endpoint to sinks.
    pub fn connect(
        &mut self,
        name: impl Into<String>,
        source: Endpoint,
        sinks: impl IntoIterator<Item = Endpoint>,
    ) -> NetId {
        self.net(Net::new(name, source, sinks.into_iter().collect()))
    }

    /// Add a fully specified net.
    pub fn net(&mut self, net: Net) -> NetId {
        let id = NetId(self.module.nets.len() as u32);
        self.module.nets.push(net);
        id
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.module.cells.len()
    }

    /// Resources of everything added so far — used by the monolithic
    /// synthesis overhead model, which sizes itself from the base design.
    pub fn resources_so_far(&self) -> ResourceCount {
        self.module.resources()
    }

    /// Validate and return the module.
    pub fn finish(self) -> Result<Module, NetlistError> {
        self.module.validate()?;
        Ok(self.module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn two_cell_module() -> Module {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let c0 = b.cell(Cell::new("c0", CellKind::full_slice()));
        let c1 = b.cell(Cell::new("c1", CellKind::Dsp));
        b.connect("n_in", Endpoint::Port(din), [Endpoint::Cell(c0)]);
        b.connect("n_mid", Endpoint::Cell(c0), [Endpoint::Cell(c1)]);
        b.connect("n_out", Endpoint::Cell(c1), [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn build_and_validate() {
        let m = two_cell_module();
        assert_eq!(m.cells().len(), 2);
        assert_eq!(m.nets().len(), 3);
        let r = m.resources();
        assert_eq!(r.luts, 8);
        assert_eq!(r.dsps, 1);
        assert!(!m.fully_placed());
    }

    #[test]
    fn validation_rejects_bad_nets() {
        let mut b = ModuleBuilder::new("bad");
        let dout = b.output("dout", StreamRole::Sink, 1);
        let c0 = b.cell(Cell::new("c0", CellKind::full_slice()));
        // Output port used as a source is illegal.
        b.connect("n", Endpoint::Port(dout), [Endpoint::Cell(c0)]);
        assert!(b.finish().is_err());

        let mut b = ModuleBuilder::new("bad2");
        let c0 = b.cell(Cell::new("c0", CellKind::full_slice()));
        b.connect("n", Endpoint::Cell(c0), Vec::new());
        assert!(b.finish().is_err());

        let mut b = ModuleBuilder::new("bad3");
        let c0 = b.cell(Cell::new("c0", CellKind::full_slice()));
        b.connect("n", Endpoint::Cell(c0), [Endpoint::Cell(CellId(99))]);
        assert!(b.finish().is_err());
    }

    #[test]
    fn locking_freezes_everything() {
        let mut m = two_cell_module();
        m.set_placement(CellId(0), TileCoord::new(1, 1)).unwrap();
        m.lock();
        assert!(m.locked);
        assert!(m.set_placement(CellId(1), TileCoord::new(2, 2)).is_err());
        assert!(m.cells_mut().is_err());
        assert!(m.nets_mut().is_err());
    }

    #[test]
    fn translation_shifts_all_geometry() {
        let mut m = two_cell_module();
        m.set_placement(CellId(0), TileCoord::new(1, 1)).unwrap();
        m.set_placement(CellId(1), TileCoord::new(3, 4)).unwrap();
        m.pblock = Some(Pblock::new(0, 5, 0, 5));
        m.lock();
        let t = m.translated(10, 20).unwrap();
        assert_eq!(t.cell(CellId(0)).placement, Some(TileCoord::new(11, 21)));
        assert_eq!(t.cell(CellId(1)).placement, Some(TileCoord::new(13, 24)));
        assert_eq!(t.pblock, Some(Pblock::new(10, 15, 20, 25)));
        // Underflow is rejected.
        assert!(m.translated(-2, 0).is_none());
    }

    #[test]
    fn wirelength_counts_placed_nets() {
        let mut m = two_cell_module();
        m.set_placement(CellId(0), TileCoord::new(0, 0)).unwrap();
        m.set_placement(CellId(1), TileCoord::new(3, 4)).unwrap();
        // Only n_mid has both endpoints placed (ports have no partpins).
        assert_eq!(m.wirelength(), 7);
    }

    #[test]
    fn role_filtering() {
        let m = two_cell_module();
        assert_eq!(m.ports_with_role(StreamRole::Source).count(), 1);
        assert_eq!(m.ports_with_role(StreamRole::Clock).count(), 0);
        assert!(m.port_by_name("dout").is_some());
        assert!(m.port_by_name("nope").is_none());
    }
}
