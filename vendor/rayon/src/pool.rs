//! The worker pool behind the parallel iterators.
//!
//! A lazily-initialized set of daemon worker threads pulls jobs from one
//! shared injector queue. Parallel calls submit a *batch* of jobs and then
//! become workers themselves: the coordinator keeps claiming unstarted jobs
//! from its own batch while it waits, so a batch always drains even when
//! every pool worker is blocked coordinating a nested batch — nested
//! parallelism (components × placement seeds) cannot deadlock.
//!
//! Safety model: jobs may borrow the coordinator's stack. The lifetime is
//! erased when a job enters the queue, which is sound because
//! [`run_batch`] does not return until every job of its batch has finished
//! running (even when one of them panics) — the borrows outlive every use.
//! Worker panics are caught, carried back to the coordinator, and resumed
//! there after the batch has fully drained, so a panicking closure
//! propagates instead of hanging the pool or poisoning unrelated batches.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased job. Only [`run_batch`] creates these, and only from
/// closures proven to outlive the batch.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch of jobs, shared between the coordinator and the
/// workers that picked its tickets up.
struct Batch {
    /// Unstarted jobs; a worker (or the coordinator) claims index
    /// `next.fetch_add(1)` and takes the job out of its slot.
    jobs: Mutex<Vec<Option<Job>>>,
    next: AtomicUsize,
    total: usize,
    /// Jobs that have finished running (successfully or by panic).
    finished: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Claim one unstarted job, if any remain.
    fn claim(&self) -> Option<Job> {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return None;
            }
            // A slot can only be empty if a concurrent claim of the same
            // index happened, which fetch_add rules out; still, skip
            // defensively rather than unwrap.
            if let Some(job) = self.jobs.lock().expect("batch queue").get_mut(i)?.take() {
                return Some(job);
            }
        }
    }

    /// Run one claimed job, recording completion and any panic.
    fn run(&self, job: Job) {
        let result = catch_unwind(AssertUnwindSafe(job));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().expect("panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut finished = self.finished.lock().expect("finished count");
        *finished += 1;
        if *finished == self.total {
            self.done.notify_all();
        }
    }
}

struct Injector {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
}

struct Pool {
    injector: Arc<Injector>,
    /// Workers spawned so far; grows lazily up to the requested level.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
/// Effective parallelism level (chunks per parallel call). 0 = not yet
/// resolved from the environment.
static LEVEL: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        injector: Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

fn worker_loop(injector: Arc<Injector>) {
    loop {
        let batch = {
            let mut queue = injector.queue.lock().expect("injector queue");
            loop {
                if let Some(batch) = queue.pop_front() {
                    break batch;
                }
                queue = injector.available.wait(queue).expect("injector wait");
            }
        };
        if let Some(job) = batch.claim() {
            batch.run(job);
        }
    }
}

/// Resolve the parallelism level: an explicit [`set_num_threads`] call
/// wins, then the `PI_THREADS` environment variable, then
/// `std::thread::available_parallelism()`. Always at least 1.
pub fn current_num_threads() -> usize {
    let level = LEVEL.load(Ordering::Relaxed);
    if level != 0 {
        return level;
    }
    let resolved = std::env::var("PI_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Racing initializers resolve the same value; store is idempotent.
    LEVEL.store(resolved, Ordering::Relaxed);
    resolved
}

/// Override the parallelism level for subsequent parallel calls (clamped
/// to at least 1). `set_num_threads(1)` forces the sequential path.
/// Results never depend on this value — only wall-clock time does.
pub fn set_num_threads(threads: usize) {
    LEVEL.store(threads.max(1), Ordering::Relaxed);
}

/// Ensure at least `want` pool workers exist.
fn ensure_workers(want: usize) {
    let pool = pool();
    let mut spawned = pool.spawned.lock().expect("spawn count");
    while *spawned < want {
        let injector = Arc::clone(&pool.injector);
        let name = format!("pi-worker-{}", *spawned);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(injector))
            .expect("spawn pool worker");
        *spawned += 1;
    }
}

/// Run every job of `tasks` to completion, using the pool for whatever the
/// coordinator does not get to first. Panics in any job are re-raised here
/// after the whole batch has drained.
pub(crate) fn run_batch<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || current_num_threads() <= 1 {
        // Sequential path: run in submission order on this thread.
        for task in tasks {
            task();
        }
        return;
    }
    let total = tasks.len();
    // SAFETY: the erased jobs borrow data owned by our caller's stack
    // frame. This function blocks until `finished == total`, i.e. until
    // every job has returned, before giving control back — no job can be
    // run (or dropped) after the borrows expire. Unclaimed jobs cannot
    // linger either: the batch Arc dies with this frame, and every ticket
    // popped later finds `claim()` empty.
    let jobs: Vec<Option<Job>> = tasks
        .into_iter()
        .map(|task| {
            let job: Box<dyn FnOnce() + Send + 'scope> = task;
            let job: Job = unsafe { std::mem::transmute(job) };
            Some(job)
        })
        .collect();
    let batch = Arc::new(Batch {
        jobs: Mutex::new(jobs),
        next: AtomicUsize::new(0),
        total,
        finished: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    let level = current_num_threads();
    // The coordinator claims jobs too, so `level - 1` helpers saturate the
    // requested parallelism.
    ensure_workers(level.saturating_sub(1));
    {
        let pool = pool();
        let mut queue = pool.injector.queue.lock().expect("injector queue");
        // One ticket per job beyond the one the coordinator starts with.
        for _ in 1..total {
            queue.push_back(Arc::clone(&batch));
        }
        pool.injector.available.notify_all();
    }

    // Help drain our own batch, then wait for stragglers.
    while let Some(job) = batch.claim() {
        batch.run(job);
    }
    let mut finished = batch.finished.lock().expect("finished count");
    while *finished < total {
        finished = batch.done.wait(finished).expect("batch wait");
    }
    drop(finished);

    let payload = batch.panic.lock().expect("panic slot").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}
