//! Offline stand-in for `rayon`.
//!
//! The build environment has no crate registry, so this crate provides the
//! parallel-iterator *API surface* the workspace uses (`par_iter`,
//! `into_par_iter`) backed by ordinary sequential iterators. Semantics are
//! identical — rayon's contract is that parallel iterators behave like
//! their sequential counterparts — only the speedup is absent. A welcome
//! side effect for this repository: telemetry event ordering is fully
//! deterministic, which the `pi-obs` same-seed stream guarantee relies on.

pub mod prelude {
    /// `into_par_iter()` on anything iterable (ranges, vectors, ...).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` on anything whose reference is iterable (slices,
    /// vectors, maps, ...).
    pub trait IntoParallelRefIterator {
        type Iter<'a>: Iterator
        where
            Self: 'a;
        fn par_iter(&self) -> Self::Iter<'_>;
    }

    impl<C: ?Sized> IntoParallelRefIterator for C
    where
        for<'a> &'a C: IntoIterator,
    {
        type Iter<'a>
            = <&'a C as IntoIterator>::IntoIter
        where
            C: 'a;
        fn par_iter(&self) -> Self::Iter<'_> {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential stand-in reports a single "thread".
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let total: u32 = (0u32..10).into_par_iter().sum();
        assert_eq!(total, 45);
        let n = (0usize..5).into_par_iter().count();
        assert_eq!(n, 5);
    }

    #[test]
    fn collect_result_short_circuits() {
        let r: Result<Vec<u32>, &str> = (0u32..10)
            .into_par_iter()
            .map(|x| if x < 99 { Ok(x) } else { Err("no") })
            .collect();
        assert_eq!(r.unwrap().len(), 10);
    }
}
