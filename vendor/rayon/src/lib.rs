//! Offline stand-in for `rayon`, with a real parallel backend.
//!
//! The build environment has no crate registry, so this crate provides the
//! parallel-iterator *API surface* the workspace uses (`par_iter`,
//! `into_par_iter`, `join`) backed by a shared [`mod@pool`] of worker
//! threads. The contract mirrors rayon's: parallel combinators behave
//! exactly like their sequential counterparts. Two properties are load-
//! bearing for this repository and are stronger than what upstream rayon
//! promises:
//!
//! * **Index order.** `collect()` (and `sum`/`count`/`for_each` fold
//!   order) always observes results in input index order, at every thread
//!   count. Items are split into contiguous chunks, each chunk's results
//!   are written into its own slot, and the slots are concatenated in
//!   chunk order — so `PI_THREADS=1` and `PI_THREADS=64` produce
//!   byte-identical values.
//! * **Panic propagation.** A panic inside a worker closure is caught,
//!   carried to the calling thread, and resumed there after the batch
//!   drains — a panicking parallel region unwinds like a sequential loop
//!   instead of hanging the pool.
//!
//! The parallelism level comes from [`set_num_threads`], else the
//! `PI_THREADS` environment variable, else
//! `std::thread::available_parallelism()`; `PI_THREADS=1` forces the
//! sequential in-thread path (no pool involvement at all). Telemetry
//! emitted *inside* worker closures is the caller's concern: see
//! `pi_obs::BufferedObs` for the buffer-per-item-and-replay-in-index-order
//! pattern the flow crates use to keep event streams deterministic.

pub mod pool;

pub use pool::{current_num_threads, set_num_threads};

/// Run `a` and `b`, potentially in parallel, returning both results.
/// Panics in either closure propagate after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    pool::run_batch(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    (
        ra.expect("join closure a completed"),
        rb.expect("join closure b completed"),
    )
}

/// The core primitive: map `f` over `items` on the pool and return the
/// results in input index order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let level = current_num_threads();
    if level <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks; a few per thread so heterogeneous items (e.g.
    // components of very different sizes) still balance.
    let chunk_count = n.min(level * 4);
    let chunk_size = n.div_ceil(chunk_count);
    let chunk_count = n.div_ceil(chunk_size);

    let mut slots: Vec<std::sync::Mutex<Vec<R>>> = Vec::with_capacity(chunk_count);
    for _ in 0..chunk_count {
        slots.push(std::sync::Mutex::new(Vec::new()));
    }
    {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunk_count);
        let mut rest = items;
        for slot in slots.iter() {
            let take = rest.len().min(chunk_size);
            let tail = rest.split_off(take);
            let chunk = rest;
            rest = tail;
            tasks.push(Box::new(move || {
                let out: Vec<R> = chunk.into_iter().map(f).collect();
                *slot.lock().expect("chunk slot") = out;
            }));
        }
        debug_assert!(rest.is_empty());
        pool::run_batch(tasks);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.into_inner().expect("chunk slot"));
    }
    out
}

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parallel map; results keep input index order.
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _result: std::marker::PhantomData,
        }
    }

    /// Run `f` on every item (in parallel; observation order is the
    /// caller's responsibility — `f` gets no index).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, &|item| f(item));
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Sum in input index order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collect the (already materialized) items.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<T>,
    {
        C::from_ordered(self.items)
    }
}

/// A pending parallel map.
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<T, R, F> ParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map on the pool and collect in input index order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_ordered(parallel_map(self.items, &self.f))
    }

    /// Execute and sum in input index order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        parallel_map(self.items, &self.f).into_iter().sum()
    }

    /// Execute, discarding results.
    pub fn count(self) -> usize {
        parallel_map(self.items, &self.f).len()
    }
}

/// Collection types a parallel iterator can gather into. `from_ordered`
/// receives the mapped results already in input index order.
pub trait FromParallelIterator<T>: Sized {
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Like rayon, collecting `Result` items yields the first error in index
/// order. Unlike a lazy sequential iterator, every item has already been
/// evaluated by the time the fold runs — an error does not cancel the
/// in-flight siblings (they were needed for deterministic telemetry
/// anyway).
impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

impl<T> FromParallelIterator<T> for String
where
    String: FromIterator<T>,
{
    fn from_ordered(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

pub mod prelude {
    pub use crate::FromParallelIterator;

    /// `into_par_iter()` on anything iterable (ranges, vectors, ...).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> crate::ParIter<Self::Item> {
            crate::ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` on anything whose reference is iterable (slices,
    /// vectors, maps, ...).
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        fn par_iter(&'a self) -> crate::ParIter<Self::Item>;
    }

    impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> crate::ParIter<Self::Item> {
            crate::ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// The parallelism level is process-global; tests that set it hold
    /// this lock so concurrent test threads observe a stable level.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    fn with_level<T>(level: usize, f: impl FnOnce() -> T) -> T {
        let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_num_threads(level);
        let out = f();
        crate::set_num_threads(4);
        out
    }

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let total: u32 = (0u32..10).into_par_iter().sum();
        assert_eq!(total, 45);
        let n = (0usize..5).into_par_iter().count();
        assert_eq!(n, 5);
    }

    #[test]
    fn collect_result_takes_first_error_in_index_order() {
        let r: Result<Vec<u32>, &str> = (0u32..10)
            .into_par_iter()
            .map(|x| if x < 99 { Ok(x) } else { Err("no") })
            .collect();
        assert_eq!(r.unwrap().len(), 10);
        let r: Result<Vec<u32>, String> = (0u32..10)
            .into_par_iter()
            .map(|x| {
                if x % 2 == 0 {
                    Ok(x)
                } else {
                    Err(format!("odd {x}"))
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "odd 1");
    }

    #[test]
    fn results_keep_index_order_at_high_thread_counts() {
        with_level(8, || {
            let n = 1000usize;
            let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * i).collect();
            let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        with_level(4, || {
            let (a, b) = crate::join(|| 1 + 1, || "two");
            assert_eq!((a, b), (2, "two"));
        });
    }

    #[test]
    fn for_each_visits_every_item() {
        with_level(4, || {
            let hits = AtomicUsize::new(0);
            (0..100usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 100);
        });
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        with_level(4, || {
            let caught = std::panic::catch_unwind(|| {
                let _: Vec<u32> = (0u32..64)
                    .into_par_iter()
                    .map(|x| {
                        if x == 33 {
                            panic!("boom at {x}");
                        }
                        x
                    })
                    .collect();
            });
            assert!(caught.is_err(), "panic must propagate to the caller");
            // The pool is still usable afterwards.
            let v: Vec<u32> = (0u32..16).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v, (1..=16).collect::<Vec<u32>>());
        });
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        with_level(4, || {
            let out: Vec<u64> = (0u64..8)
                .into_par_iter()
                .map(|i| {
                    let inner: u64 = (0u64..16).into_par_iter().map(|j| i * 100 + j).sum();
                    inner
                })
                .collect();
            let expect: Vec<u64> = (0u64..8)
                .map(|i| (0u64..16).map(|j| i * 100 + j).sum())
                .collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn sequential_level_stays_in_thread() {
        with_level(1, || {
            let here = std::thread::current().id();
            let ids: Vec<std::thread::ThreadId> = (0..8usize)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect();
            assert!(ids.iter().all(|&id| id == here));
        });
    }
}
