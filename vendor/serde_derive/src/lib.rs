//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's tree data model, parsing the item with the bare
//! `proc_macro` API (no `syn`/`quote` — the registry is unreachable in this
//! build environment).
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields (including private fields),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit / tuple / struct variants (externally tagged),
//! * the field attribute `#[serde(default = "path")]`.
//!
//! Generics, lifetimes, and other serde attributes are rejected with a
//! compile-time panic so unsupported uses fail loudly instead of silently
//! misencoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- item model --------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Path from `#[serde(default = "path")]`, if present.
    default: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i, false);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in: generic type `{name}` is not supported");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream(), &name))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde stand-in: unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde stand-in: unexpected enum body {other:?}"),
        },
        other => panic!("serde stand-in: cannot derive for item kind `{other}`"),
    };
    Item { name, kind }
}

/// Skip attributes; return a `#[serde(default = "path")]` payload if one is
/// present. Any other serde attribute panics (unless `allow_serde` is
/// false, in which case every serde attribute panics — container and
/// variant positions).
fn skip_attrs(toks: &[TokenTree], i: &mut usize, allow_serde: bool) -> Option<String> {
    let mut default = None;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            panic!("serde stand-in: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if !allow_serde {
                    panic!("serde stand-in: serde attributes are only supported on fields");
                }
                default = Some(parse_serde_default(&inner));
            }
        }
        *i += 2;
    }
    default
}

/// Parse the inside of `#[serde(...)]`, accepting only `default = "path"`.
fn parse_serde_default(attr: &[TokenTree]) -> String {
    let Some(TokenTree::Group(args)) = attr.get(1) else {
        panic!("serde stand-in: unsupported serde attribute shape");
    };
    let parts: Vec<TokenTree> = args.stream().into_iter().collect();
    match (parts.first(), parts.get(1), parts.get(2)) {
        (Some(TokenTree::Ident(kw)), Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
            if kw.to_string() == "default" && eq.as_char() == '=' && parts.len() == 3 =>
        {
            let s = lit.to_string();
            s.trim_matches('"').to_string()
        }
        _ => panic!(
            "serde stand-in: only #[serde(default = \"path\")] is supported, found #[serde({})]",
            args.stream()
        ),
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stand-in: expected identifier, found {other:?}"),
    }
}

/// Advance past a type (or discriminant expression) up to a top-level `,`,
/// consuming the comma. Tracks `<`/`>` nesting; `()`/`[]`/`{}` nesting is
/// already handled by the token tree.
fn skip_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream, ty: &str) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i, true);
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde stand-in: expected `:` after field {ty}.{name}, found {other:?}")
            }
        }
        skip_until_comma(&toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        let _ = skip_attrs(&toks, &mut i, false);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        skip_until_comma(&toks, &mut i);
    }
    n
}

fn parse_variants(ts: TokenStream, ty: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i, false);
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream(), &format!("{ty}::{name}")))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        skip_until_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- code generation ---------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_content(&self.{0})),",
                    f.name
                );
            }
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let mut entries = String::new();
            for idx in 0..*n {
                let _ = write!(entries, "::serde::Serialize::to_content(&self.{idx}),");
            }
            format!("::serde::Content::Seq(::std::vec![{entries}])")
        }
        ItemKind::UnitStruct => "::serde::Content::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_content(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b}),"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Seq(::std::vec![{elems}]))]),",
                            binders.join(", ")
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_content({0})),",
                                    f.name
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Map(::std::vec![{entries}]))]),",
                            binders.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn named_fields_de(ty_path: &str, ty_label: &str, fields: &[Field], map_var: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            let default = match &f.default {
                Some(path) => format!("::std::option::Option::Some({path})"),
                None => "::std::option::Option::None".to_string(),
            };
            format!(
                "{0}: ::serde::__private::field({map_var}, \"{ty_label}\", \"{0}\", {default})?,",
                f.name
            )
        })
        .collect();
    format!("::std::result::Result::Ok({ty_path} {{ {inits} }})")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inner = named_fields_de(name, name, fields, "__m");
            format!("let __m = ::serde::__private::as_map(content, \"{name}\")?;\n{inner}")
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__xs[{k}])?,"))
                .collect();
            format!(
                "let __xs = ::serde::__private::as_seq(content, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__v)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let elems: String = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__xs[{k}])?,"))
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => {{\
                             let __xs = ::serde::__private::as_seq(__v, {n}, \"{name}::{vname}\")?;\
                             ::std::result::Result::Ok({name}::{vname}({elems})) }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let inner = named_fields_de(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fields,
                            "__m2",
                        );
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => {{\
                             let __m2 = ::serde::__private::as_map(__v, \"{name}::{vname}\")?;\
                             {inner} }},"
                        );
                    }
                }
            }
            format!(
                "match content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError(\
                 ::std::string::String::from(\"expected a variant of {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
