//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of `rand 0.8` APIs the workspace actually uses
//! are reimplemented here: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen::<T>()` / `gen_range(..)` for the
//! numeric types that appear in the codebase. The generator is a
//! xoshiro256++ seeded through SplitMix64 — high-quality, deterministic,
//! and stable across platforms, which is all the workspace requires (every
//! caller seeds explicitly; statistical equivalence with upstream `rand`
//! streams is *not* promised).

/// A random number generator core: the only primitive everything else
/// builds on is a uniform `u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the subset of `rand`'s `Standard` distribution this workspace uses).
pub trait StandardSample {
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from(&self, rng: &mut dyn RngCore) -> T;
}

// Unbiased-enough uniform integer in [0, n): Lemire-style widening
// multiply without the rejection loop (the modulo bias over a 64-bit
// space is negligible for the small ranges used here, and skipping the
// loop keeps sampling O(1) and deterministic).
fn uniform_u64_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Extension methods on any RNG core, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64, standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let y: usize = rng.gen_range(0..17);
            assert!(y < 17);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let h: i16 = rng.gen_range(-128..=127);
            assert!((-128..=127).contains(&h));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
