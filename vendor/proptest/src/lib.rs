//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: range/tuple/`collection::vec` strategies, `prop_map`, the
//! `proptest!` macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! fixed-seed PRNG (seeded per test by case index), so runs are fully
//! deterministic; shrinking is not implemented — failures report the
//! original input instead of a minimized one.

use std::fmt;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// How a test case ends early: a failed assertion or a rejected input
/// (`prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for API compatibility; unused by the stand-in.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values of `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// `Just`-style constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a vector whose length is drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// The per-case body outcome used by the generated test functions.
pub type TestCaseResult = Result<(), TestCaseError>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-block macro. Each `#[test] fn name(args in strategies) { .. }`
/// becomes an ordinary `#[test]` that runs the body over `config.cases`
/// deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    (__case as u64) ^ 0x5DEE_CE66_D00D_CAFE_u64,
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome: $crate::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case {__case} failed: {__msg}");
                    }
                }
            }
            assert!(
                __rejected < __config.cases,
                "proptest: every generated case was rejected by prop_assume!"
            );
        }
    )*};
    // With a leading #![proptest_config(..)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in crate::collection::vec((0u8..3, 1u64..100), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert!((1..100).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(s in (1u16..5).prop_map(|x| x * 10)) {
            prop_assert!(s % 10 == 0 && (10..50).contains(&s));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_are_respected(_x in 0u8..5) {
            prop_assert!(true);
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = (0u32..1000, 0u32..1000);
        let a = Strategy::generate(&strat, &mut TestRng::new(9));
        let b = Strategy::generate(&strat, &mut TestRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn error_helpers() {
        let e = TestCaseError::fail(String::from("boom"));
        assert!(format!("{e}").contains("boom"));
    }
}
