//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface the workspace's `benches/` use —
//! `Criterion::bench_function`, `benchmark_group` + `sample_size`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! mean-of-N wall-clock timer instead of criterion's statistical engine.
//! Good enough to keep `cargo bench` compiling and producing comparable
//! numbers in an environment without registry access.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in `iter_batched`; the stand-in
/// always runs one setup per routine call, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to every benchmark closure; measures the routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly, timing every call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t = Instant::now();
            let out = routine();
            self.elapsed += t.elapsed();
            self.iters += 1;
            drop(out);
        }
    }

    /// Run `routine` over fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.elapsed += t.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{name:<50} {:>12.3} µs/iter ({} iters)",
            mean * 1e6,
            b.iters
        );
    } else {
        println!("{name:<50} (no iterations)");
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Opaque black box: best-effort optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 20);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("t", |b| {
                b.iter_batched(|| 1u64, |x| calls += x, BatchSize::LargeInput)
            });
            g.finish();
        }
        assert_eq!(calls, 5);
    }
}
