//! Offline stand-in for `serde_json`.
//!
//! Reuses the vendored `serde` crate's [`serde::Content`] tree as its
//! [`Value`] type, and implements a plain recursive-descent JSON parser and
//! printer over it. Covers the API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, `to_value`, `from_value`,
//! `Value` (with string indexing), and the `json!` macro for object
//! literals.

use std::fmt;

pub use serde::Content as Value;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---- public API --------------------------------------------------------

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_content(&value)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Deserialize a type out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value)?)
}

/// Build a [`Value`] object/array literal. Keys are string literals;
/// values are any serializable expressions, `null`, or nested
/// `json!`-style braces.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- printer -----------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(x, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != b {
            return Err(Error(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n).map(|i| -i) {
                        return Ok(Value::I64(i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3.25}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({ "k": 1 });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn json_macro_objects() {
        let id = String::from("x1");
        let v = json!({ "id": id, "n": 3, "ok": true });
        assert_eq!(to_string(&v).unwrap(), r#"{"id":"x1","n":3,"ok":true}"#);
    }

    #[test]
    fn index_and_mutate() {
        let mut v: Value = from_str(r#"{"locked":true,"n":1}"#).unwrap();
        assert_eq!(v["locked"], Value::Bool(true));
        v["locked"] = Value::Bool(false);
        let locked: bool = from_value(v["locked"].clone()).unwrap();
        assert!(!locked);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = 123.456789012345e-7_f64;
        let v = Value::F64(x);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo ☂ \"q\"".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
