//! Offline stand-in for `serde`.
//!
//! The build environment has no crate registry, so this crate provides the
//! subset of serde's data model the workspace uses, reimplemented around a
//! simple owned tree ([`Content`]) instead of serde's zero-copy visitor
//! machinery. `serde_json` (the vendored stand-in next door) reuses
//! [`Content`] as its `Value` type, so `to_value`/`from_value` are free.
//!
//! Encoding conventions match real serde's JSON behavior where the
//! workspace depends on it:
//! * structs serialize as maps in field order;
//! * newtype structs serialize transparently as their inner value;
//! * enums are externally tagged (`"Variant"` for unit variants,
//!   `{"Variant": ...}` for data variants);
//! * `#[serde(default = "path")]` supplies missing fields on deserialize.

use std::fmt;

/// The serialization data model: an owned JSON-like tree.
///
/// Variant names follow `serde_json::Value` so the vendored `serde_json`
/// can re-export this type directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-ordered map (insertion order preserved — field order for
    /// structs, which keeps output deterministic).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map` content.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        static NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Content {
    /// Mutable map indexing; inserts `Null` for missing keys (matching
    /// `serde_json::Value` semantics). Panics on non-map content.
    fn index_mut(&mut self, key: &str) -> &mut Content {
        match self {
            Content::Map(m) => {
                if let Some(pos) = m.iter().position(|(k, _)| k == key) {
                    &mut m[pos].1
                } else {
                    m.push((key.to_string(), Content::Null));
                    &mut m.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index into {} with a string key", other.kind()),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialize from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => i128::from(*v),
                    Content::I64(v) => i128::from(*v),
                    other => return Err(DeError(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("integer {v} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => i128::from(*v),
                    Content::I64(v) => i128::from(*v),
                    other => return Err(DeError(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError(format!("integer {v} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError(format!("expected single character, found {s:?}"))),
        }
    }
}

// ---- container impls ---------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(xs) => xs.iter().map(T::from_content).collect(),
            other => Err(DeError(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(xs) if xs.len() == $n => {
                        Ok(($($t::from_content(&xs[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-tuple, found {}", $n, other.kind()))),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

// ---- derive-macro runtime support --------------------------------------

/// Support routines used by the generated code of the vendored
/// `serde_derive`. Not part of the public API contract.
pub mod __private {
    use super::{Content, DeError, Deserialize};

    /// View content as a struct map.
    pub fn as_map<'c>(c: &'c Content, ty: &str) -> Result<&'c [(String, Content)], DeError> {
        match c {
            Content::Map(m) => Ok(m),
            other => Err(DeError(format!(
                "expected map for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Deserialize one named field, falling back to `default` when absent.
    pub fn field<T: Deserialize>(
        map: &[(String, Content)],
        ty: &str,
        name: &str,
        default: Option<fn() -> T>,
    ) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_content(v).map_err(|e| DeError(format!("{ty}.{name}: {}", e.0)))
            }
            None => match default {
                Some(f) => Ok(f()),
                None => Err(DeError(format!("missing field {ty}.{name}"))),
            },
        }
    }

    /// View content as a sequence of exactly `n` elements (tuple
    /// structs/variants with more than one field).
    pub fn as_seq<'c>(c: &'c Content, n: usize, ty: &str) -> Result<&'c [Content], DeError> {
        match c {
            Content::Seq(xs) if xs.len() == n => Ok(xs),
            Content::Seq(xs) => Err(DeError(format!(
                "expected {n} elements for {ty}, found {}",
                xs.len()
            ))),
            other => Err(DeError(format!(
                "expected sequence for {ty}, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i16::from_content(&(-7i16).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_content(&Content::Null).unwrap(),
            None::<u8>
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let v: Vec<(u32, i32)> = vec![(1, -1), (2, -2)];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, i32)>::from_content(&c).unwrap(), v);
    }
}
