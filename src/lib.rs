//! # preimpl-cnn
//!
//! A reproduction of *"Exploring a Layer-based Pre-implemented Flow for
//! Mapping CNN on FPGA"* (IPPS 2021) as a pure-Rust toolflow: a columnar
//! FPGA device model, netlists and design checkpoints, synthesis
//! generators for CNN layer engines, a simulated-annealing placer and
//! negotiated-congestion router with static timing analysis, a
//! RapidWright-like stitching layer, and — on top of all of it — the
//! paper's layer-based pre-implemented flow and its monolithic baseline.
//!
//! ## Quickstart
//!
//! ```
//! use preimpl_cnn::prelude::*;
//!
//! // Target device and network.
//! let device = Device::xcku5p_like();
//! let network = models::toy();
//!
//! // One config drives both phases (and carries the telemetry sink, if
//! // any — see [`pi_obs`] and `FlowConfig::with_sink`).
//! let cfg = FlowConfig::new().with_seeds([1]);
//!
//! // Phase 1 (done once): pre-implement every component into a database.
//! let (db, _reports) = build_component_db(&network, &device, &cfg).unwrap();
//!
//! // Phase 2 (automatic): compose + inter-component routing.
//! let (design, report) = run_pre_implemented_flow(&network, &db, &device, &cfg).unwrap();
//! assert!(design.fully_routed());
//! println!("accelerator Fmax: {:.0} MHz", report.compile.timing.fmax_mhz);
//! ```
//!
//! See `examples/` for LeNet-5, VGG-16 and custom-network walkthroughs, and
//! the `pi-bench` crate for the binaries that regenerate every table and
//! figure of the paper.

pub mod cli;

pub use pi_cnn as cnn;
pub use pi_fabric as fabric;
pub use pi_flow as flow;
pub use pi_lint as lint;
pub use pi_memalloc as memalloc;
pub use pi_model as model;
pub use pi_netlist as netlist;
pub use pi_obs as obs;
pub use pi_pnr as pnr;
pub use pi_stitch as stitch;
pub use pi_synth as synth;

/// Process exit codes shared by every gating binary (`pilint`, `flowstat
/// diff`, `preimpl --lint`).
///
/// The convention separates "the tool could not do its job" from "the tool
/// did its job and the gate tripped", so CI scripts can distinguish a
/// broken invocation from a genuine finding:
///
/// * `0` — ran to completion, gate clean.
/// * `1` — operational error (bad flags, unreadable input, flow failure).
/// * `2` — ran to completion, gate tripped (lint errors / denied warnings,
///   or a metric regression for `flowstat diff`).
pub mod exit {
    /// Ran to completion; nothing to report.
    pub const CLEAN: u8 = 0;
    /// The tool itself failed (usage, I/O, parse, flow error).
    pub const OPERATIONAL_ERROR: u8 = 1;
    /// Ran to completion and the gate tripped.
    pub const GATE: u8 = 2;
}

/// Everything a typical user of the flow needs in scope.
pub mod prelude {
    pub use pi_cnn::graph::Granularity;
    pub use pi_cnn::{models, parse_archdef, parse_archdef_lenient, Network};
    pub use pi_fabric::{Device, Pblock, ResourceCount, TileCoord};
    pub use pi_flow::{
        build_component_db, build_component_db_cached, extend_component_db, improve_slowest,
        run_baseline_flow, run_pre_implemented_flow, DbCacheStats, FlowComparison, FlowConfig,
    };
    pub use pi_lint::{parse_waivers, Diagnostic, Level, LintConfig, LintEngine, LintReport};
    pub use pi_model::{Import, ImportFinding, ModelFormat};
    pub use pi_netlist::{Checkpoint, Design, Module};
    pub use pi_obs::agg::{ReportDiff, RunReport};
    pub use pi_obs::{parse_jsonl, EventSink, FileSink, MemorySink, NullSink, Obs};
    pub use pi_pnr::{CompileReport, TimingReport};
    pub use pi_stitch::{ComponentDb, DbCache};
    pub use pi_synth::{SynthMode, SynthOptions};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reaches_every_crate() {
        use crate::prelude::*;
        let d = Device::test_part();
        assert!(d.cols() > 0);
        let n = models::toy();
        assert!(n.validate().is_ok());
    }
}
