//! Shared command-line plumbing for every binary in the workspace.
//!
//! `preimpl`, `pilint`, `flowstat` and `pi-serve` all speak the same
//! dialect: a leading subcommand, positional inputs, `--flag` switches and
//! `--flag VALUE` options, the BrokenPipe-tolerant stdout contract, and
//! the shared [`crate::exit`] code convention. Before this module each
//! binary re-implemented that loop by hand and they drifted (different
//! error spellings, different `--threads` validation). Now a binary
//! declares its flags as a table and gets parsing, validation and the
//! `main` wrapper from one place:
//!
//! ```
//! use preimpl_cnn::cli::{parse_from, Flag};
//!
//! const FLAGS: &[Flag] = &[Flag::switch("--json"), Flag::value("--device")];
//! let args = ["lint", "a.cnn", "--json"].iter().map(|s| s.to_string());
//! let cli = parse_from(args, FLAGS, "usage: demo <cmd>").unwrap();
//! assert_eq!(cli.command, "lint");
//! assert!(cli.switch("--json"));
//! assert_eq!(cli.value("--device"), None);
//! ```

use std::process::ExitCode;
use std::str::FromStr;

/// How a flag consumes arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// A bare switch (`--json`).
    Switch,
    /// An option that always consumes the next argument (`--device NAME`).
    Value,
    /// A switch that consumes the next argument only when one follows and
    /// does not look like a flag (`--fail-on-regression [PCT]`). Presence
    /// is visible via [`Cli::switch`] whether or not a value was given.
    OptionalValue,
}

/// One accepted flag: a bare switch (`--json`) or an option that consumes
/// the next argument (`--device NAME`). Options may repeat; [`Cli::value`]
/// returns the last occurrence, [`Cli::values`] all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flag {
    pub name: &'static str,
    pub kind: FlagKind,
}

impl Flag {
    /// A boolean switch (`--json`).
    pub const fn switch(name: &'static str) -> Flag {
        Flag {
            name,
            kind: FlagKind::Switch,
        }
    }

    /// An option consuming the next argument (`--device NAME`).
    pub const fn value(name: &'static str) -> Flag {
        Flag {
            name,
            kind: FlagKind::Value,
        }
    }

    /// A switch with an optional trailing value (`--gate [THRESHOLD]`).
    pub const fn optional_value(name: &'static str) -> Flag {
        Flag {
            name,
            kind: FlagKind::OptionalValue,
        }
    }
}

/// A parsed command line: subcommand, positionals, and the flags seen.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// The leading subcommand (`stats`, `diff`, `serve`, ...).
    pub command: String,
    /// Non-flag arguments in order.
    pub positional: Vec<String>,
    switches: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
}

impl Cli {
    /// Was this switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// Last value given for this option, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for this (repeatable) option, in order.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Last value of this option parsed as `T`, with a uniform error
    /// message (`--seeds must be a number`-style).
    pub fn parsed<T: FromStr>(&self, name: &str, what: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("{name} must be {what}")),
        }
    }

    /// The `i`-th positional, or a `missing <what>` usage error.
    pub fn positional(&self, i: usize, what: &str, usage: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{what}>\n{usage}"))
    }

    /// The shared `--threads N` knob: validated to be at least 1.
    pub fn threads(&self) -> Result<Option<usize>, String> {
        match self.parsed::<usize>("--threads", "a number")? {
            Some(0) => Err("--threads must be at least 1".to_string()),
            other => Ok(other),
        }
    }

    /// The shared `--device NAME` knob with its workspace-wide default.
    pub fn device(&self) -> &str {
        self.value("--device").unwrap_or("xcku5p-like")
    }

    /// The shared `--block` granularity switch.
    pub fn granularity(&self) -> pi_cnn::graph::Granularity {
        if self.switch("--block") {
            pi_cnn::graph::Granularity::Block
        } else {
            pi_cnn::graph::Granularity::Layer
        }
    }
}

/// Parse the process arguments (skipping `argv[0]`) against a flag table.
pub fn parse(flags: &'static [Flag], usage: &str) -> Result<Cli, String> {
    parse_from(std::env::args().skip(1), flags, usage)
}

/// [`parse`] over an explicit argument stream (testable).
pub fn parse_from(
    argv: impl IntoIterator<Item = String>,
    flags: &'static [Flag],
    usage: &str,
) -> Result<Cli, String> {
    let mut argv = argv.into_iter().peekable();
    let mut cli = Cli {
        command: argv.next().ok_or_else(|| usage.to_string())?,
        ..Cli::default()
    };
    while let Some(a) = argv.next() {
        if let Some(flag) = flags.iter().find(|f| f.name == a) {
            match flag.kind {
                FlagKind::Switch => cli.switches.push(flag.name),
                FlagKind::Value => {
                    let v = argv.next().ok_or(format!("{} needs a value", flag.name))?;
                    cli.values.push((flag.name, v));
                }
                FlagKind::OptionalValue => {
                    cli.switches.push(flag.name);
                    if argv.peek().is_some_and(|next| !next.starts_with('-')) {
                        let v = argv.next().expect("peeked value exists");
                        cli.values.push((flag.name, v));
                    }
                }
            }
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a}\n{usage}"));
        } else {
            cli.positional.push(a);
        }
    }
    Ok(cli)
}

/// Write a rendering to stdout, tolerating a closed pipe (`tool … | head`
/// is a normal way to consume output, not an error — swallow `BrokenPipe`
/// instead of panicking like `println!` would).
pub fn emit(text: &str) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing to stdout: {e}")),
    }
}

/// The shared `main` wrapper: run the tool, map `Err` onto
/// [`crate::exit::OPERATIONAL_ERROR`] with the uniform `error:` rendering.
/// Gate trips ([`crate::exit::GATE`]) are an `Ok` exit code — the tool did
/// its job — so they pass through untouched.
pub fn run_main(run: impl FnOnce() -> Result<ExitCode, String>) -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(crate::exit::OPERATIONAL_ERROR)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAGS: &[Flag] = &[
        Flag::switch("--json"),
        Flag::switch("--block"),
        Flag::value("--device"),
        Flag::value("--threads"),
        Flag::value("--allow"),
        Flag::optional_value("--gate"),
    ];

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_positionals_switches_and_values() {
        let cli = parse_from(
            args(&["lint", "a.cnn", "--json", "--device", "test-part", "b"]),
            FLAGS,
            "usage",
        )
        .unwrap();
        assert_eq!(cli.command, "lint");
        assert_eq!(cli.positional, vec!["a.cnn", "b"]);
        assert!(cli.switch("--json"));
        assert!(!cli.switch("--block"));
        assert_eq!(cli.value("--device"), Some("test-part"));
        assert_eq!(cli.device(), "test-part");
    }

    #[test]
    fn repeatable_options_keep_every_occurrence() {
        let cli = parse_from(
            args(&["lint", "--allow", "PL0101", "--allow", "PL0102"]),
            FLAGS,
            "usage",
        )
        .unwrap();
        assert_eq!(cli.values("--allow"), vec!["PL0101", "PL0102"]);
        assert_eq!(cli.value("--allow"), Some("PL0102"), "last wins");
    }

    #[test]
    fn unknown_flags_and_missing_values_error_with_usage() {
        let e = parse_from(args(&["lint", "--nope"]), FLAGS, "USAGE").unwrap_err();
        assert!(e.contains("unknown flag --nope") && e.contains("USAGE"));
        let e = parse_from(args(&["lint", "--device"]), FLAGS, "USAGE").unwrap_err();
        assert_eq!(e, "--device needs a value");
        let e = parse_from(args(&[]), FLAGS, "USAGE").unwrap_err();
        assert_eq!(e, "USAGE");
    }

    #[test]
    fn optional_value_flags_work_bare_valued_and_trailing() {
        let bare = parse_from(args(&["x", "--gate", "--json"]), FLAGS, "u").unwrap();
        assert!(bare.switch("--gate") && bare.switch("--json"));
        assert_eq!(bare.value("--gate"), None, "next flag is not a value");
        let valued = parse_from(args(&["x", "--gate", "2.5", "in.cnn"]), FLAGS, "u").unwrap();
        assert!(valued.switch("--gate"));
        assert_eq!(valued.value("--gate"), Some("2.5"));
        assert_eq!(valued.positional, vec!["in.cnn"], "positional survives");
        let trailing = parse_from(args(&["x", "--gate"]), FLAGS, "u").unwrap();
        assert!(trailing.switch("--gate"));
        assert_eq!(trailing.value("--gate"), None, "end of argv is fine");
    }

    #[test]
    fn threads_validation_is_uniform() {
        let ok = parse_from(args(&["x", "--threads", "2"]), FLAGS, "u").unwrap();
        assert_eq!(ok.threads().unwrap(), Some(2));
        let zero = parse_from(args(&["x", "--threads", "0"]), FLAGS, "u").unwrap();
        assert_eq!(zero.threads().unwrap_err(), "--threads must be at least 1");
        let junk = parse_from(args(&["x", "--threads", "many"]), FLAGS, "u").unwrap();
        assert_eq!(junk.threads().unwrap_err(), "--threads must be a number");
        assert_eq!(
            parse_from(args(&["x"]), FLAGS, "u").unwrap().threads(),
            Ok(None)
        );
    }

    #[test]
    fn defaults_and_positional_errors() {
        let cli = parse_from(args(&["x"]), FLAGS, "u").unwrap();
        assert_eq!(cli.device(), "xcku5p-like");
        assert_eq!(cli.granularity(), pi_cnn::graph::Granularity::Layer);
        assert_eq!(
            cli.positional(0, "archdef", "U").unwrap_err(),
            "missing <archdef>\nU"
        );
        let blk = parse_from(args(&["x", "--block"]), FLAGS, "u").unwrap();
        assert_eq!(blk.granularity(), pi_cnn::graph::Granularity::Block);
    }
}
