//! `flowstat` — fold recorded telemetry into deterministic run reports.
//!
//! ```text
//! flowstat summarize <trace.jsonl> [--json] [--wallclock] [--top N]
//! flowstat diff <a.jsonl> <b.jsonl> [--fail-on-regression [PCT]] [--json]
//! flowstat record <trace.jsonl> --history DIR [--label NAME]
//! flowstat trend --history DIR [--window N] [--tolerance PCT]
//!               [--fail-on-regression [PCT]]
//! ```
//!
//! `summarize` folds one `--trace` recording (see the `preimpl`,
//! `pi-bench` and `pi-serve` binaries) into a [`RunReport`]: span profile
//! tree, counter/gauge/histogram tables and per-phase convergence traces;
//! `--top N` prints only the N hottest spans by self cost. `diff` aligns
//! two recordings by scope path and prints every metric delta; with
//! `--fail-on-regression [PCT]` (default 0) the exit code becomes 2 when
//! any aligned metric moved by more than PCT percent (or
//! appeared/vanished), which is the CI regression gate. `record` compacts
//! a recording into an append-only JSONL history, and `trend` judges the
//! newest recorded run against the rolling median of the preceding window
//! — the run-*history* gate that catches slow drift pairwise `diff`
//! misses. All output is deterministic: built from seq-ordered events
//! only, timestamps ignored, so two same-seed runs summarize
//! byte-identically at any thread count. `--wallclock` appends the one
//! non-deterministic section — `wallclock*` fields such as the daemon's
//! per-request latency — which never participates in diffs or gates.

use pi_obs::history::{self, HistoryEntry};
use preimpl_cnn::cli::{self, Flag};
use preimpl_cnn::prelude::*;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: flowstat <summarize|diff|record|trend> [trace.jsonl] [trace-b.jsonl] \
                     [--fail-on-regression [PCT]] [--json] [--wallclock] [--top N] \
                     [--history DIR] [--label NAME] [--window N] [--tolerance PCT]";

const FLAGS: &[Flag] = &[
    Flag::switch("--json"),
    Flag::switch("--wallclock"),
    Flag::optional_value("--fail-on-regression"),
    Flag::value("--top"),
    Flag::value("--history"),
    Flag::value("--label"),
    Flag::value("--window"),
    Flag::value("--tolerance"),
];

const DEFAULT_WINDOW: usize = 20;
const DEFAULT_TOLERANCE_PCT: f64 = 5.0;

fn load_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(RunReport::from_events(&events))
}

/// `--history DIR` is mandatory for `record` and `trend`.
fn history_dir(args: &cli::Cli) -> Result<&Path, String> {
    args.value("--history")
        .map(Path::new)
        .ok_or_else(|| format!("--history DIR is required\n{USAGE}"))
}

/// The gate threshold of `--fail-on-regression [PCT]`: `None` when the
/// flag is absent, `Some(pct)` otherwise (`default` when bare).
fn gate_pct(args: &cli::Cli, default: f64) -> Result<Option<f64>, String> {
    if !args.switch("--fail-on-regression") && args.value("--fail-on-regression").is_none() {
        return Ok(None);
    }
    let pct = args
        .parsed::<f64>("--fail-on-regression", "a number")?
        .unwrap_or(default);
    if !pct.is_finite() || pct < 0.0 {
        return Err("--fail-on-regression must be >= 0".to_string());
    }
    Ok(Some(pct))
}

fn main() -> ExitCode {
    cli::run_main(run)
}

fn run() -> Result<ExitCode, String> {
    let args = cli::parse(FLAGS, USAGE)?;
    match args.command.as_str() {
        "summarize" => {
            let path = args.positional(0, "trace.jsonl", USAGE)?;
            let report = load_report(path)?;
            if let Some(top) = args.parsed::<usize>("--top", "a number")? {
                cli::emit(&report.render_top(top))?;
                return Ok(ExitCode::SUCCESS);
            }
            if args.switch("--json") {
                cli::emit(&(report.render_json() + "\n"))?;
            } else {
                cli::emit(&report.render_text())?;
                if args.switch("--wallclock") {
                    cli::emit(&report.render_wallclock())?;
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let a_path = args.positional(0, "a.jsonl", USAGE)?.to_string();
            let b_path = args.positional(1, "b.jsonl", USAGE)?;
            let a = load_report(&a_path)?;
            let b = load_report(b_path)?;
            let diff = a.diff(&b);
            if args.switch("--json") {
                cli::emit(&(diff.render_json() + "\n"))?;
            } else {
                cli::emit(&diff.render_text())?;
            }
            if let Some(pct) = gate_pct(&args, 0.0)? {
                let regressions = diff.regressions(pct);
                if !regressions.is_empty() {
                    eprintln!(
                        "flowstat: {} metrics beyond the {pct}% gate",
                        regressions.len()
                    );
                    return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "record" => {
            let path = args.positional(0, "trace.jsonl", USAGE)?;
            let dir = history_dir(&args)?;
            let label = match args.value("--label") {
                Some(l) => l.to_string(),
                None => Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.to_string()),
            };
            let report = load_report(path)?;
            let entry = HistoryEntry::from_report(label.clone(), &report);
            history::append(dir, &entry)
                .map_err(|e| format!("appending to {}: {e}", dir.display()))?;
            cli::emit(&format!(
                "flowstat record: {:?} ({} metrics) -> {}\n",
                label,
                entry.metrics.len(),
                dir.join(history::HISTORY_FILE).display()
            ))?;
            Ok(ExitCode::SUCCESS)
        }
        "trend" => {
            let dir = history_dir(&args)?;
            let window = args
                .parsed::<usize>("--window", "a number")?
                .unwrap_or(DEFAULT_WINDOW)
                .max(1);
            let tolerance = match args.parsed::<f64>("--tolerance", "a number")? {
                Some(t) if !t.is_finite() || t < 0.0 => {
                    return Err("--tolerance must be >= 0".to_string());
                }
                other => other.unwrap_or(DEFAULT_TOLERANCE_PCT),
            };
            // A valued --fail-on-regression doubles as the tolerance.
            let gate = gate_pct(&args, tolerance)?;
            let entries = history::load(dir)?;
            let report = history::trend(&entries, window, gate.unwrap_or(tolerance))?;
            cli::emit(&report.render_text())?;
            if gate.is_some() && !report.is_clean() {
                eprintln!(
                    "flowstat: {} metric(s) beyond the trend gate",
                    report.regressions.len()
                );
                return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}
