//! `flowstat` — fold recorded telemetry into deterministic run reports.
//!
//! ```text
//! flowstat summarize <trace.jsonl> [--json]
//! flowstat diff <a.jsonl> <b.jsonl> [--fail-on-regression PCT] [--json]
//! ```
//!
//! `summarize` folds one `--trace` recording (see the `preimpl` and
//! `pi-bench` binaries) into a [`RunReport`]: span profile tree,
//! counter/gauge/histogram tables and per-phase convergence traces.
//! `diff` aligns two recordings by scope path and prints every metric
//! delta; with `--fail-on-regression PCT` the exit code becomes 2 when any
//! aligned metric moved by more than PCT percent (or appeared/vanished),
//! which is the CI regression gate. All output is deterministic: built
//! from seq-ordered events only, timestamps ignored, so two same-seed
//! runs summarize byte-identically at any thread count.

use preimpl_cnn::prelude::*;
use std::process::ExitCode;

struct Args {
    command: String,
    positional: Vec<String>,
    json: bool,
    fail_on_regression: Option<f64>,
}

fn usage() -> String {
    "usage: flowstat <summarize|diff> <trace.jsonl> [trace-b.jsonl] \
     [--fail-on-regression PCT] [--json]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        positional: Vec::new(),
        json: false,
        fail_on_regression: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--fail-on-regression" => {
                let pct: f64 = argv
                    .next()
                    .ok_or("--fail-on-regression needs a percentage")?
                    .parse()
                    .map_err(|_| "--fail-on-regression must be a number".to_string())?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--fail-on-regression must be >= 0".to_string());
                }
                args.fail_on_regression = Some(pct);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn load_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(RunReport::from_events(&events))
}

/// Write a rendering to stdout. A closed pipe (`flowstat summarize … |
/// head`) is a normal way to consume a report, not an error — swallow
/// `BrokenPipe` instead of panicking like `println!` would.
fn emit(text: &str) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing to stdout: {e}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "summarize" => {
            let path = args
                .positional
                .first()
                .ok_or_else(|| format!("missing <trace.jsonl>\n{}", usage()))?;
            let report = load_report(path)?;
            if args.json {
                emit(&(report.render_json() + "\n"))?;
            } else {
                emit(&report.render_text())?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let a_path = args
                .positional
                .first()
                .ok_or_else(|| format!("missing <a.jsonl>\n{}", usage()))?;
            let b_path = args
                .positional
                .get(1)
                .ok_or_else(|| format!("missing <b.jsonl>\n{}", usage()))?;
            let a = load_report(a_path)?;
            let b = load_report(b_path)?;
            let diff = a.diff(&b);
            if args.json {
                emit(&(diff.render_json() + "\n"))?;
            } else {
                emit(&diff.render_text())?;
            }
            if let Some(pct) = args.fail_on_regression {
                let regressions = diff.regressions(pct);
                if !regressions.is_empty() {
                    eprintln!(
                        "flowstat: {} metrics beyond the {pct}% gate",
                        regressions.len()
                    );
                    return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}
