//! `flowstat` — fold recorded telemetry into deterministic run reports.
//!
//! ```text
//! flowstat summarize <trace.jsonl> [--json] [--wallclock]
//! flowstat diff <a.jsonl> <b.jsonl> [--fail-on-regression PCT] [--json]
//! ```
//!
//! `summarize` folds one `--trace` recording (see the `preimpl`,
//! `pi-bench` and `pi-serve` binaries) into a [`RunReport`]: span profile
//! tree, counter/gauge/histogram tables and per-phase convergence traces.
//! `diff` aligns two recordings by scope path and prints every metric
//! delta; with `--fail-on-regression PCT` the exit code becomes 2 when any
//! aligned metric moved by more than PCT percent (or appeared/vanished),
//! which is the CI regression gate. All output is deterministic: built
//! from seq-ordered events only, timestamps ignored, so two same-seed
//! runs summarize byte-identically at any thread count. `--wallclock`
//! appends the one non-deterministic section — `wallclock*` fields such
//! as the daemon's per-request latency — which never participates in
//! diffs or gates.

use preimpl_cnn::cli::{self, Flag};
use preimpl_cnn::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "usage: flowstat <summarize|diff> <trace.jsonl> [trace-b.jsonl] \
                     [--fail-on-regression PCT] [--json] [--wallclock]";

const FLAGS: &[Flag] = &[
    Flag::switch("--json"),
    Flag::switch("--wallclock"),
    Flag::value("--fail-on-regression"),
];

fn load_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(RunReport::from_events(&events))
}

fn main() -> ExitCode {
    cli::run_main(run)
}

fn run() -> Result<ExitCode, String> {
    let args = cli::parse(FLAGS, USAGE)?;
    match args.command.as_str() {
        "summarize" => {
            let path = args.positional(0, "trace.jsonl", USAGE)?;
            let report = load_report(path)?;
            if args.switch("--json") {
                cli::emit(&(report.render_json() + "\n"))?;
            } else {
                cli::emit(&report.render_text())?;
                if args.switch("--wallclock") {
                    cli::emit(&report.render_wallclock())?;
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let a_path = args.positional(0, "a.jsonl", USAGE)?.to_string();
            let b_path = args.positional(1, "b.jsonl", USAGE)?;
            let a = load_report(&a_path)?;
            let b = load_report(b_path)?;
            let diff = a.diff(&b);
            if args.switch("--json") {
                cli::emit(&(diff.render_json() + "\n"))?;
            } else {
                cli::emit(&diff.render_text())?;
            }
            let gate = match args.parsed::<f64>("--fail-on-regression", "a number")? {
                Some(pct) if !pct.is_finite() || pct < 0.0 => {
                    return Err("--fail-on-regression must be >= 0".to_string());
                }
                other => other,
            };
            if let Some(pct) = gate {
                let regressions = diff.regressions(pct);
                if !regressions.is_empty() {
                    eprintln!(
                        "flowstat: {} metrics beyond the {pct}% gate",
                        regressions.len()
                    );
                    return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}
