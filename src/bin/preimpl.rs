//! `preimpl` — command-line driver for the pre-implemented CNN flow.
//!
//! ```text
//! preimpl stats     <archdef>                      network statistics (Table I style)
//! preimpl build-db  <archdef> <db-dir> [--block]   pre-implement components into a DCP directory
//! preimpl compose   <archdef> <db-dir> [--block]   generate the accelerator from checkpoints
//! preimpl baseline  <archdef>          [--block]   run the traditional monolithic flow
//! preimpl floorplan <archdef> <db-dir> [--block]   render the assembled floorplan
//! preimpl devices                                  list the device catalog
//! ```
//!
//! All commands accept `--device <name>` (default `xcku5p-like`),
//! `--seeds N` (default 3), `--threads N` (worker threads for the
//! parallel regions; default: `PI_THREADS` env, else all cores),
//! `--trace <path>` (write a JSON-Lines telemetry stream of the run),
//! `--report <path>` (write the aggregated `flowstat` run report of the
//! run — see the `flowstat` binary for summarizing/diffing recorded
//! traces), `--lint` (run the `pi-lint` stage-boundary passes; adds a
//! lint summary to the output and, with `--deny-warnings`, turns any
//! warning into a gate failure — exit code 2, matching `pilint` and
//! `flowstat diff`) and `--db-dir <path>` (persistent content-addressed component
//! cache: checkpoints keyed by signature + device + implementation knobs
//! are reused across runs instead of re-implemented; with it, `compose`
//! and `floorplan` need no positional `<db-dir>` and build misses on
//! demand). Run `cargo run --release --bin preimpl -- <cmd>`.

use preimpl_cnn::cnn::graph::Granularity;
use preimpl_cnn::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    positional: Vec<String>,
    device: String,
    seeds: u64,
    threads: Option<usize>,
    block: bool,
    trace: Option<String>,
    report: Option<String>,
    db_cache: Option<String>,
    lint: bool,
    deny_warnings: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        positional: Vec::new(),
        device: "xcku5p-like".to_string(),
        seeds: 3,
        threads: None,
        block: false,
        trace: None,
        report: None,
        db_cache: None,
        lint: false,
        deny_warnings: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--device" => {
                args.device = argv.next().ok_or("--device needs a value")?;
            }
            "--seeds" => {
                args.seeds = argv
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|_| "--seeds must be a number".to_string())?;
            }
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a number".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(n);
            }
            "--block" => args.block = true,
            "--lint" => args.lint = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--trace" => {
                args.trace = Some(argv.next().ok_or("--trace needs a path")?);
            }
            "--report" => {
                args.report = Some(argv.next().ok_or("--report needs a path")?);
            }
            "--db-dir" => {
                args.db_cache = Some(argv.next().ok_or("--db-dir needs a path")?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: preimpl <stats|build-db|compose|baseline|floorplan|devices> <archdef> \
     [db-dir] [--device NAME] [--seeds N] [--threads N] [--block] [--lint] \
     [--deny-warnings] [--trace PATH] [--report PATH] [--db-dir PATH]"
        .to_string()
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(preimpl_cnn::exit::OPERATIONAL_ERROR)
        }
    }
}

/// Render a lint-gate failure and map it onto the shared exit convention;
/// every other flow error stays an operational error.
fn lint_gate_exit(e: preimpl_cnn::flow::FlowError) -> Result<ExitCode, String> {
    if let preimpl_cnn::flow::FlowError::LintFailed(report) = e {
        print!("{}", report.render_text());
        eprintln!("preimpl: lint gate tripped ({})", report.summary_line());
        Ok(ExitCode::from(preimpl_cnn::exit::GATE))
    } else {
        Err(e.to_string())
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.command == "devices" {
        for name in ["xcku5p-like", "xcku060-like", "test-part"] {
            let d = Device::catalog(name).map_err(|e| e.to_string())?;
            let t = d.totals();
            println!(
                "{name:<14} {} cols x {} rows, {} LUTs, {} FFs, {} BRAMs, {} DSPs",
                d.cols(),
                d.rows(),
                t.luts,
                t.ffs,
                t.brams,
                t.dsps
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let device = Device::catalog(&args.device).map_err(|e| e.to_string())?;
    let granularity = if args.block {
        Granularity::Block
    } else {
        Granularity::Layer
    };
    let archdef_path = args
        .positional
        .first()
        .ok_or_else(|| format!("missing <archdef>\n{}", usage()))?;
    let text = std::fs::read_to_string(archdef_path)
        .map_err(|e| format!("reading {archdef_path}: {e}"))?;
    let network = parse_archdef(&text).map_err(|e| e.to_string())?;

    match args.command.as_str() {
        "stats" => {
            let stats = network.stats().map_err(|e| e.to_string())?;
            println!("network {}", network.name);
            println!("  conv layers : {:>12}", stats.conv_layers);
            println!("  conv weights: {:>12}", stats.conv_weights);
            println!("  conv MACs   : {:>12}", stats.conv_macs);
            println!("  fc layers   : {:>12}", stats.fc_layers);
            println!("  fc weights  : {:>12}", stats.fc_weights);
            println!("  fc MACs     : {:>12}", stats.fc_macs);
            println!(
                "  total       : {:>12} weights, {} MACs",
                stats.total_weights(),
                stats.total_macs()
            );
            if args.lint {
                let engine = preimpl_cnn::lint::LintEngine::new(
                    preimpl_cnn::lint::LintConfig::new().with_deny_warnings(args.deny_warnings),
                );
                let report =
                    engine.lint_network(&network, granularity, &preimpl_cnn::obs::Obs::null());
                println!("{}", report.summary_line());
                if report.gate(args.deny_warnings) {
                    return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
                }
            }
            println!("\ncomponents ({granularity:?} granularity):");
            for c in network.components(granularity).map_err(|e| e.to_string())? {
                println!("  {:<40} {} -> {}", c.name, c.input_shape, c.output_shape);
            }
            Ok(ExitCode::SUCCESS)
        }
        "build-db" => {
            let dir = db_dir(&args)?;
            let cfg = config(&args, granularity)?;
            let t = std::time::Instant::now();
            let (db, reports, stats) = match build_component_db_cached(&network, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            db.save_dir(&dir).map_err(|e| e.to_string())?;
            println!(
                "built {} checkpoints in {:.1} s -> {}",
                db.len(),
                t.elapsed().as_secs_f64(),
                dir.display()
            );
            if args.db_cache.is_some() {
                println!(
                    "db-cache: {} hits, {} misses, {} invalidated ({} bytes loaded)",
                    stats.hits, stats.misses, stats.invalidations, stats.bytes_loaded
                );
            }
            for r in &reports {
                println!(
                    "  {:<40} {:6.0} MHz  {:6} LUTs {:4} DSPs",
                    r.name, r.fmax_mhz, r.resources.luts, r.resources.dsps
                );
            }
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        "compose" | "floorplan" => {
            let cfg = config(&args, granularity)?;
            // With a persistent cache, the positional checkpoint directory
            // is optional: misses are built on demand and persisted. The
            // plain form still loads a directory produced by `build-db`.
            let (db, stats) = if args.db_cache.is_some() {
                let (db, _, stats) = match build_component_db_cached(&network, &device, &cfg) {
                    Ok(v) => v,
                    Err(e) => return lint_gate_exit(e),
                };
                (db, Some(stats))
            } else {
                let dir = db_dir(&args)?;
                (
                    ComponentDb::load_dir(&dir).map_err(|e| e.to_string())?,
                    None,
                )
            };
            let (design, report) = match run_pre_implemented_flow(&network, &db, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            if args.command == "floorplan" {
                println!(
                    "{}",
                    preimpl_cnn::pnr::report::floorplan_sketch(&design, &device, 96)
                );
            } else {
                // Deterministic line first (the warm/cold CI smoke compares
                // these byte-for-byte), wall-clock on its own line after.
                println!(
                    "assembled {}: Fmax {:.0} MHz, pipeline {:.0} ns, frame {:.3} ms, \
                     {} stitched nets",
                    design.name,
                    report.compile.timing.fmax_mhz,
                    report.latency.pipeline_ns,
                    report.latency.frame_ms,
                    report.compose.stitched_nets,
                );
                if let Some(lint) = &report.lint {
                    println!("{}", lint.summary_line());
                }
                if let Some(stats) = &stats {
                    println!(
                        "db-cache: {} hits, {} misses, {} invalidated ({} bytes loaded)",
                        stats.hits, stats.misses, stats.invalidations, stats.bytes_loaded
                    );
                }
                println!(
                    "timing: generated in {:.1} ms (stitch share {:.0}%)",
                    report.total_time().as_secs_f64() * 1000.0,
                    report.stitch_share() * 100.0
                );
                print!(
                    "{}",
                    preimpl_cnn::pnr::report::utilization_table(&design.resources(), &device)
                );
            }
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        "baseline" => {
            let cfg = config(&args, granularity)?;
            let (design, report) = match run_baseline_flow(&network, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            println!(
                "baseline {}: Fmax {:.0} MHz, implemented in {:.2} s",
                design.name,
                report.compile.timing.fmax_mhz,
                report.total_time().as_secs_f64()
            );
            print!(
                "{}",
                preimpl_cnn::pnr::report::utilization_table(&design.resources(), &device)
            );
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn db_dir(args: &Args) -> Result<PathBuf, String> {
    args.positional
        .get(1)
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing <db-dir>\n{}", usage()))
}

fn config(args: &Args, granularity: Granularity) -> Result<FlowConfig, String> {
    let mut cfg = FlowConfig::new()
        .with_granularity(granularity)
        .with_seeds(1..=args.seeds);
    if let Some(threads) = args.threads {
        cfg = cfg.with_threads(threads);
    }
    if let Some(path) = &args.trace {
        let sink = FileSink::create(path).map_err(|e| format!("opening {path}: {e}"))?;
        cfg = cfg.with_sink(Arc::new(sink));
    }
    if let Some(dir) = &args.db_cache {
        cfg = cfg.with_db_dir(dir);
    }
    if args.lint {
        cfg = cfg
            .with_lint(preimpl_cnn::lint::LintConfig::new().with_deny_warnings(args.deny_warnings));
    }
    if args.report.is_some() {
        // Installed after the sink so the capture tees the same stream the
        // `--trace` file records.
        cfg = cfg.with_report_capture();
    }
    Ok(cfg)
}

/// Write the aggregated run report when `--report` was given. Call after
/// the flow so the capture has seen the whole run.
fn maybe_write_report(args: &Args, cfg: &FlowConfig) -> Result<(), String> {
    let Some(path) = &args.report else {
        return Ok(());
    };
    let report = cfg
        .run_report()
        .expect("--report installs a capture in config()");
    std::fs::write(path, report.render_text()).map_err(|e| format!("writing {path}: {e}"))?;
    println!("flowstat report -> {path}");
    Ok(())
}
