//! `preimpl` — command-line driver for the pre-implemented CNN flow.
//!
//! ```text
//! preimpl stats     <archdef>                      network statistics (Table I style)
//! preimpl build-db  <archdef> <db-dir> [--block]   pre-implement components into a DCP directory
//! preimpl compose   <archdef> <db-dir> [--block]   generate the accelerator from checkpoints
//! preimpl baseline  <archdef>          [--block]   run the traditional monolithic flow
//! preimpl floorplan <archdef> <db-dir> [--block]   render the assembled floorplan
//! preimpl devices                                  list the device catalog
//! ```
//!
//! All commands accept `--device <name>` (default `xcku5p-like`),
//! `--seeds N` (default 3), `--threads N` (worker threads for the
//! parallel regions; default: `PI_THREADS` env, else all cores),
//! `--trace <path>` (write a JSON-Lines telemetry stream of the run),
//! `--report <path>` (write the aggregated `flowstat` run report of the
//! run — see the `flowstat` binary for summarizing/diffing recorded
//! traces), `--lint` (run the `pi-lint` stage-boundary passes; adds a
//! lint summary to the output and, with `--deny-warnings`, turns any
//! warning into a gate failure — exit code 2, matching `pilint` and
//! `flowstat diff`), `--db-dir <path>` (persistent content-addressed
//! component cache: checkpoints keyed by signature + device +
//! implementation knobs are reused across runs instead of
//! re-implemented; with it, `compose` and `floorplan` need no positional
//! `<db-dir>` and build misses on demand), `--db-budget-bytes N`
//! (LRU-evict the cache beyond N bytes) and `--fifo-autosize on|off`
//! (size each stitched link FIFO from the `pi-lint` dataflow analysis
//! instead of the fixed default — makes skew-heavy join topologies that
//! would trip `PL0400`/`PL0401` under `--lint` flow to completion).
//!
//! Every archdef-taking command also accepts `--model FILE` instead of
//! the positional `<archdef>`: FILE is a model descriptor (`.json` op
//! graph or `.prototxt` layer config — see `pi-model`) imported into the
//! flow, with importer findings printed as warnings and the `pi-lint`
//! graph passes (shape propagation included) run as a gate before
//! anything is built. With `--model`, `<db-dir>` becomes the first
//! positional.
//!
//! `compose` and `build-db` also accept `--remote ADDR`: instead of
//! running locally, the job (archdef or descriptor text + full
//! serialized config) is submitted to a `pi-serve` compile farm at ADDR,
//! which builds off its shared component cache; `--trace`/`--report`
//! then write the trace and report the daemon returned. Run `cargo run
//! --release --bin preimpl -- <cmd>`.

use pi_serve::{JobCommand, JobSpec};
use preimpl_cnn::cli::{self, Cli, Flag};
use preimpl_cnn::cnn::graph::Granularity;
use preimpl_cnn::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: preimpl <stats|build-db|compose|baseline|floorplan|devices> \
                     <archdef> [db-dir] [--model FILE] [--device NAME] [--seeds N] [--threads N] \
                     [--block] [--lint] [--deny-warnings] [--trace PATH] [--report PATH] \
                     [--db-dir PATH] [--db-budget-bytes N] [--remote ADDR] \
                     [--router-steiner on|off] [--router-slack-order on|off] \
                     [--router-max-iters N] [--fifo-autosize on|off]";

const FLAGS: &[Flag] = &[
    Flag::switch("--block"),
    Flag::switch("--lint"),
    Flag::switch("--deny-warnings"),
    Flag::value("--model"),
    Flag::value("--device"),
    Flag::value("--seeds"),
    Flag::value("--threads"),
    Flag::value("--trace"),
    Flag::value("--report"),
    Flag::value("--db-dir"),
    Flag::value("--db-budget-bytes"),
    Flag::value("--remote"),
    Flag::value("--router-steiner"),
    Flag::value("--router-slack-order"),
    Flag::value("--router-max-iters"),
    Flag::value("--fifo-autosize"),
];

fn main() -> ExitCode {
    cli::run_main(run)
}

/// Render a lint-gate failure and map it onto the shared exit convention;
/// every other flow error stays an operational error.
fn lint_gate_exit(e: preimpl_cnn::flow::FlowError) -> Result<ExitCode, String> {
    if let preimpl_cnn::flow::FlowError::LintFailed(report) = e {
        print!("{}", report.render_text());
        eprintln!("preimpl: lint gate tripped ({})", report.summary_line());
        Ok(ExitCode::from(preimpl_cnn::exit::GATE))
    } else {
        Err(e.to_string())
    }
}

fn run() -> Result<ExitCode, String> {
    let args = cli::parse(FLAGS, USAGE)?;
    if args.command == "devices" {
        for name in ["xcku5p-like", "xcku060-like", "test-part"] {
            let d = Device::catalog(name).map_err(|e| e.to_string())?;
            let t = d.totals();
            println!(
                "{name:<14} {} cols x {} rows, {} LUTs, {} FFs, {} BRAMs, {} DSPs",
                d.cols(),
                d.rows(),
                t.luts,
                t.ffs,
                t.brams,
                t.dsps
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let device = Device::catalog(args.device()).map_err(|e| e.to_string())?;
    let granularity = args.granularity();
    let (text, network, format) = if let Some(model_path) = args.value("--model") {
        let format = ModelFormat::from_path(model_path).unwrap_or(ModelFormat::Json);
        let text = std::fs::read_to_string(model_path)
            .map_err(|e| format!("reading {model_path}: {e}"))?;
        let import =
            preimpl_cnn::model::import(&text, format).map_err(|e| format!("{model_path}: {e}"))?;
        for f in &import.findings {
            eprintln!("preimpl: warning[{}] {}: {}", f.code, f.origin, f.message);
        }
        // Imported graphs pass the lint shape-propagation gate before the
        // flow sees them; archdefs keep their opt-in `--lint` behavior.
        let engine = preimpl_cnn::lint::LintEngine::new(preimpl_cnn::lint::LintConfig::new());
        let report =
            engine.lint_network(&import.network, granularity, &preimpl_cnn::obs::Obs::null());
        if report.errors() > 0 {
            print!("{}", report.render_text());
            eprintln!("preimpl: model gate tripped ({})", report.summary_line());
            return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
        }
        (text, import.network, format)
    } else {
        let archdef_path = args.positional(0, "archdef", USAGE)?;
        let text = std::fs::read_to_string(archdef_path)
            .map_err(|e| format!("reading {archdef_path}: {e}"))?;
        let network = parse_archdef(&text).map_err(|e| e.to_string())?;
        (text, network, ModelFormat::Archdef)
    };

    if let Some(addr) = args.value("--remote") {
        return run_remote(addr, &args, &text, format, granularity);
    }

    match args.command.as_str() {
        "stats" => {
            let stats = network.stats().map_err(|e| e.to_string())?;
            println!("network {}", network.name);
            println!("  conv layers : {:>12}", stats.conv_layers);
            println!("  conv weights: {:>12}", stats.conv_weights);
            println!("  conv MACs   : {:>12}", stats.conv_macs);
            println!("  fc layers   : {:>12}", stats.fc_layers);
            println!("  fc weights  : {:>12}", stats.fc_weights);
            println!("  fc MACs     : {:>12}", stats.fc_macs);
            println!(
                "  total       : {:>12} weights, {} MACs",
                stats.total_weights(),
                stats.total_macs()
            );
            if args.switch("--lint") {
                let engine = preimpl_cnn::lint::LintEngine::new(
                    preimpl_cnn::lint::LintConfig::new()
                        .with_deny_warnings(args.switch("--deny-warnings")),
                );
                let report =
                    engine.lint_network(&network, granularity, &preimpl_cnn::obs::Obs::null());
                println!("{}", report.summary_line());
                if report.gate(args.switch("--deny-warnings")) {
                    return Ok(ExitCode::from(preimpl_cnn::exit::GATE));
                }
            }
            println!("\ncomponents ({granularity:?} granularity):");
            for c in network.components(granularity).map_err(|e| e.to_string())? {
                println!("  {:<40} {} -> {}", c.name, c.input_shape, c.output_shape);
            }
            Ok(ExitCode::SUCCESS)
        }
        "build-db" => {
            let dir = db_dir(&args)?;
            let cfg = config(&args, granularity)?;
            let t = std::time::Instant::now();
            let (db, reports, stats) = match build_component_db_cached(&network, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            db.save_dir(&dir).map_err(|e| e.to_string())?;
            println!(
                "built {} checkpoints in {:.1} s -> {}",
                db.len(),
                t.elapsed().as_secs_f64(),
                dir.display()
            );
            if args.value("--db-dir").is_some() {
                print!("{}", db_cache_line(&stats));
            }
            for r in &reports {
                println!(
                    "  {:<40} {:6.0} MHz  {:6} LUTs {:4} DSPs",
                    r.name, r.fmax_mhz, r.resources.luts, r.resources.dsps
                );
            }
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        "compose" | "floorplan" => {
            let cfg = config(&args, granularity)?;
            // With a persistent cache, the positional checkpoint directory
            // is optional: misses are built on demand and persisted. The
            // plain form still loads a directory produced by `build-db`.
            let (db, stats) = if args.value("--db-dir").is_some() {
                let (db, _, stats) = match build_component_db_cached(&network, &device, &cfg) {
                    Ok(v) => v,
                    Err(e) => return lint_gate_exit(e),
                };
                (db, Some(stats))
            } else {
                let dir = db_dir(&args)?;
                (
                    ComponentDb::load_dir(&dir).map_err(|e| e.to_string())?,
                    None,
                )
            };
            let (design, report) = match run_pre_implemented_flow(&network, &db, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            if args.command == "floorplan" {
                println!(
                    "{}",
                    preimpl_cnn::pnr::report::floorplan_sketch(&design, &device, 96)
                );
            } else {
                // Deterministic line first (the warm/cold CI smoke compares
                // these byte-for-byte), wall-clock on its own line after.
                println!(
                    "assembled {}: Fmax {:.0} MHz, pipeline {:.0} ns, frame {:.3} ms, \
                     {} stitched nets",
                    design.name,
                    report.compile.timing.fmax_mhz,
                    report.latency.pipeline_ns,
                    report.latency.frame_ms,
                    report.compose.stitched_nets,
                );
                if let Some(lint) = &report.lint {
                    println!("{}", lint.summary_line());
                }
                if let Some(stats) = &stats {
                    print!("{}", db_cache_line(stats));
                }
                println!(
                    "timing: generated in {:.1} ms (stitch share {:.0}%)",
                    report.total_time().as_secs_f64() * 1000.0,
                    report.stitch_share() * 100.0
                );
                print!(
                    "{}",
                    preimpl_cnn::pnr::report::utilization_table(&design.resources(), &device)
                );
                print!(
                    "{}",
                    preimpl_cnn::pnr::report::routing_summary(&report.compile.route_stats)
                );
            }
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        "baseline" => {
            let cfg = config(&args, granularity)?;
            let (design, report) = match run_baseline_flow(&network, &device, &cfg) {
                Ok(v) => v,
                Err(e) => return lint_gate_exit(e),
            };
            println!(
                "baseline {}: Fmax {:.0} MHz, implemented in {:.2} s",
                design.name,
                report.compile.timing.fmax_mhz,
                report.total_time().as_secs_f64()
            );
            print!(
                "{}",
                preimpl_cnn::pnr::report::utilization_table(&design.resources(), &device)
            );
            maybe_write_report(&args, &cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

/// Ship the job to a `pi-serve` compile farm and render what came back.
/// The config sent over the wire carries the flow knobs only — sinks and
/// captures are process-local, and the daemon overrides the cache knobs
/// with its own (`JobSpec::normalized`), so `--db-dir` here is pointless
/// but harmless.
fn run_remote(
    addr: &str,
    args: &Cli,
    archdef_text: &str,
    format: ModelFormat,
    granularity: Granularity,
) -> Result<ExitCode, String> {
    let command = match args.command.as_str() {
        "compose" => JobCommand::Compose,
        "build-db" => JobCommand::BuildDb,
        other => {
            return Err(format!(
                "--remote supports compose and build-db, not {other}"
            ))
        }
    };
    let cfg = wire_config(args, granularity)?;
    let spec = JobSpec::new(archdef_text, args.device(), cfg)
        .with_command(command)
        .with_format(format);
    // With `--report`, propagate a trace context and splice the daemon's
    // tagged span tree under the local `serve:request` span: the written
    // report is then one unified call tree spanning both processes.
    let (result, spliced) = if args.value("--report").is_some() {
        let (result, events) =
            pi_serve::submit_and_wait_traced(addr, &spec).map_err(|e| e.to_string())?;
        (result, Some(events))
    } else {
        let result = pi_serve::submit_and_wait(addr, &spec).map_err(|e| e.to_string())?;
        (result, None)
    };
    cli::emit(&format!("{}\n", result.summary))?;
    print!("{}", db_cache_line(&result.cache));
    if let Some(path) = args.value("--trace") {
        std::fs::write(path, &result.trace_jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        println!("remote trace -> {path}");
    }
    if let Some(path) = args.value("--report") {
        let events = spliced.expect("--report path takes the traced call");
        let report = RunReport::from_events(&events);
        std::fs::write(path, report.render_text()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("flowstat report -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The uniform cache-interaction line every cache-aware path prints.
fn db_cache_line(stats: &preimpl_cnn::flow::DbCacheStats) -> String {
    format!(
        "db-cache: {} hits, {} misses, {} invalidated, {} evicted ({} bytes loaded)\n",
        stats.hits, stats.misses, stats.invalidations, stats.evictions, stats.bytes_loaded
    )
}

fn db_dir(args: &Cli) -> Result<PathBuf, String> {
    // With `--model` there is no positional archdef, so db-dir shifts up.
    let idx = if args.value("--model").is_some() {
        0
    } else {
        1
    };
    args.positional(idx, "db-dir", USAGE).map(PathBuf::from)
}

fn seeds(args: &Cli) -> Result<u64, String> {
    Ok(args.parsed::<u64>("--seeds", "a number")?.unwrap_or(3))
}

/// The flow knobs shared by the local and remote paths (everything that
/// serializes through `pi_flow::config_json`).
fn wire_config(args: &Cli, granularity: Granularity) -> Result<FlowConfig, String> {
    let mut cfg = FlowConfig::new()
        .with_granularity(granularity)
        .with_seeds(1..=seeds(args)?);
    let mut route = cfg.route;
    if let Some(v) = args.value("--router-steiner") {
        route.steiner = on_off(v, "--router-steiner")?;
    }
    if let Some(v) = args.value("--router-slack-order") {
        route.slack_order = on_off(v, "--router-slack-order")?;
    }
    if let Some(n) = args.parsed::<usize>("--router-max-iters", "a number")? {
        if n == 0 {
            return Err("--router-max-iters must be at least 1".into());
        }
        route.max_iters = n;
    }
    cfg = cfg.with_route(route);
    if args.switch("--lint") {
        cfg = cfg.with_lint(
            preimpl_cnn::lint::LintConfig::new().with_deny_warnings(args.switch("--deny-warnings")),
        );
    }
    if let Some(v) = args.value("--fifo-autosize") {
        cfg = cfg.with_fifo_autosize(on_off(v, "--fifo-autosize")?);
    }
    Ok(cfg)
}

fn on_off(v: &str, flag: &str) -> Result<bool, String> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("{flag} expects on|off, got {other:?}")),
    }
}

fn config(args: &Cli, granularity: Granularity) -> Result<FlowConfig, String> {
    let mut cfg = wire_config(args, granularity)?;
    if let Some(threads) = args.threads()? {
        cfg = cfg.with_threads(threads);
    }
    if let Some(path) = args.value("--trace") {
        let sink = FileSink::create(path).map_err(|e| format!("opening {path}: {e}"))?;
        cfg = cfg.with_sink(Arc::new(sink));
    }
    if let Some(dir) = args.value("--db-dir") {
        cfg = cfg.with_db_dir(dir);
    }
    if let Some(bytes) = args.parsed::<u64>("--db-budget-bytes", "a byte count")? {
        cfg = cfg.with_db_budget_bytes(bytes);
    }
    if args.value("--report").is_some() {
        // Installed after the sink so the capture tees the same stream the
        // `--trace` file records.
        cfg = cfg.with_report_capture();
    }
    Ok(cfg)
}

/// Write the aggregated run report when `--report` was given. Call after
/// the flow so the capture has seen the whole run.
fn maybe_write_report(args: &Cli, cfg: &FlowConfig) -> Result<(), String> {
    let Some(path) = args.value("--report") else {
        return Ok(());
    };
    let report = cfg
        .run_report()
        .expect("--report installs a capture in config()");
    std::fs::write(path, report.render_text()).map_err(|e| format!("writing {path}: {e}"))?;
    println!("flowstat report -> {path}");
    Ok(())
}
