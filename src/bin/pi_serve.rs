//! `pi-serve` — the compile-farm daemon CLI.
//!
//! ```text
//! pi-serve serve  [--bind ADDR] [--db-dir PATH] [--db-budget-bytes N]
//!                 [--workers N] [--queue-capacity N] [--trace PATH]
//! pi-serve submit <archdef> [--addr ADDR] [--device NAME] [--seeds N]
//!                 [--block] [--build-db] [--trace PATH] [--report PATH]
//! pi-serve trace  <job-id> [--addr ADDR]
//! pi-serve stats  [--addr ADDR]
//! pi-serve metrics [--addr ADDR]
//! pi-serve health [--addr ADDR]
//! pi-serve stop   [--addr ADDR]
//! ```
//!
//! `serve` runs the daemon in the foreground (background it with `&`): it
//! owns the shared component-database cache at `--db-dir`, accepts jobs
//! over the wire protocol in `pi_serve::protocol`, coalesces identical
//! submissions, and LRU-evicts the cache past `--db-budget-bytes`. With
//! `--trace` the daemon records its own telemetry stream — one
//! `serve::request` point per finished job carrying the deterministic
//! cache counters plus a `wallclock_ms` latency field (`flowstat
//! summarize --wallclock` renders it; diffs never see it).
//!
//! `submit` is the standalone client (`preimpl --remote` wraps the same
//! call): it sends the archdef and waits for the result. `trace` fetches
//! a finished job's tagged JSONL event stream (feed it to `flowstat
//! summarize` or `pilint trace`); `stats` prints the daemon's queue and
//! cache counters; `metrics` scrapes the live Prometheus-text `/metrics`
//! exposition — the same bytes a real scraper would pull, so CI can
//! validate it with no HTTP client beyond this binary. `stop` asks the
//! daemon to drain and exit. Exit codes follow the shared
//! `preimpl_cnn::exit` convention.

use pi_serve::{JobCommand, JobSpec, ServerOptions};
use preimpl_cnn::cli::{self, Cli, Flag};
use preimpl_cnn::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str =
    "usage: pi-serve <serve|submit|trace|stats|metrics|health|stop> [archdef|job-id] \
                     [--bind ADDR] [--addr ADDR] [--db-dir PATH] [--db-budget-bytes N] \
                     [--workers N] [--queue-capacity N] [--device NAME] [--seeds N] \
                     [--block] [--build-db] [--trace PATH] [--report PATH]";

const FLAGS: &[Flag] = &[
    Flag::switch("--block"),
    Flag::switch("--build-db"),
    Flag::value("--bind"),
    Flag::value("--addr"),
    Flag::value("--db-dir"),
    Flag::value("--db-budget-bytes"),
    Flag::value("--workers"),
    Flag::value("--queue-capacity"),
    Flag::value("--device"),
    Flag::value("--seeds"),
    Flag::value("--trace"),
    Flag::value("--report"),
];

/// Where clients look for the daemon unless told otherwise.
const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() -> ExitCode {
    cli::run_main(run)
}

fn addr(args: &Cli) -> &str {
    args.value("--addr").unwrap_or(DEFAULT_ADDR)
}

fn run() -> Result<ExitCode, String> {
    let args = cli::parse(FLAGS, USAGE)?;
    match args.command.as_str() {
        "serve" => {
            let mut options = ServerOptions {
                db_dir: args.value("--db-dir").map(Into::into),
                db_budget_bytes: args.parsed::<u64>("--db-budget-bytes", "a byte count")?,
                ..ServerOptions::default()
            };
            if let Some(w) = args.parsed::<usize>("--workers", "a number")? {
                if w == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                options.workers = w;
            }
            if let Some(c) = args.parsed::<usize>("--queue-capacity", "a number")? {
                if c == 0 {
                    return Err("--queue-capacity must be at least 1".to_string());
                }
                options.queue_capacity = c;
            }
            if let Some(path) = args.value("--trace") {
                let sink = FileSink::create(path).map_err(|e| format!("opening {path}: {e}"))?;
                options.obs = Obs::new(Arc::new(sink));
            }
            let bind = args.value("--bind").unwrap_or(DEFAULT_ADDR);
            let handle = pi_serve::serve(bind, options).map_err(|e| e.to_string())?;
            // The resolved address, on its own line, so scripts binding
            // `--bind 127.0.0.1:0` can read the ephemeral port back.
            println!("pi-serve listening on {}", handle.addr());
            handle.join();
            println!("pi-serve stopped");
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            let archdef_path = args.positional(0, "archdef", USAGE)?;
            let text = std::fs::read_to_string(archdef_path)
                .map_err(|e| format!("reading {archdef_path}: {e}"))?;
            let seeds = args.parsed::<u64>("--seeds", "a number")?.unwrap_or(3);
            let cfg = FlowConfig::new()
                .with_granularity(args.granularity())
                .with_seeds(1..=seeds);
            let command = if args.switch("--build-db") {
                JobCommand::BuildDb
            } else {
                JobCommand::Compose
            };
            let spec = JobSpec::new(text, args.device(), cfg).with_command(command);
            let result =
                pi_serve::submit_and_wait(addr(&args), &spec).map_err(|e| e.to_string())?;
            cli::emit(&format!("{}\n", result.summary))?;
            cli::emit(&format!(
                "db-cache: {} hits, {} misses, {} invalidated, {} evicted ({} bytes loaded)\n",
                result.cache.hits,
                result.cache.misses,
                result.cache.invalidations,
                result.cache.evictions,
                result.cache.bytes_loaded
            ))?;
            if let Some(path) = args.value("--trace") {
                std::fs::write(path, &result.trace_jsonl)
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("remote trace -> {path}");
            }
            if let Some(path) = args.value("--report") {
                std::fs::write(path, &result.report_text)
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("flowstat report -> {path}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "trace" => {
            let job_id = args.positional(0, "job-id", USAGE)?;
            let body = pi_serve::client::trace(addr(&args), job_id).map_err(|e| e.to_string())?;
            cli::emit(&body)?;
            Ok(ExitCode::SUCCESS)
        }
        "stats" => {
            let body = pi_serve::client::stats(addr(&args)).map_err(|e| e.to_string())?;
            cli::emit(&format!("{body}\n"))?;
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let body = pi_serve::client::metrics(addr(&args)).map_err(|e| e.to_string())?;
            cli::emit(&body)?;
            Ok(ExitCode::SUCCESS)
        }
        "health" => {
            pi_serve::client::healthz(addr(&args)).map_err(|e| e.to_string())?;
            println!("ok");
            Ok(ExitCode::SUCCESS)
        }
        "stop" => {
            pi_serve::client::shutdown(addr(&args)).map_err(|e| e.to_string())?;
            println!("stopping");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}
