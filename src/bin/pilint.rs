//! `pilint` — static-analysis front door for the pre-implemented flow.
//!
//! ```text
//! pilint archdef <file>               lint a CNN architecture definition
//! pilint db      <db-dir> [archdef]   lint a checkpoint database (+ coverage)
//! pilint design  <archdef> <db-dir>   compose + route, lint the assembled design
//! pilint codes                        print the lint-code registry
//! ```
//!
//! All lint commands accept `--json`, `--deny-warnings`, `--waivers FILE`,
//! `--allow CODE` / `--warn CODE` / `--deny CODE` (repeatable),
//! `--device NAME` (default `xcku5p-like`), `--block` (block granularity)
//! and `--threads N`. `archdef` parses leniently so semantic defects (a
//! corrupted shape, an orphan layer) surface as diagnostics rather than a
//! parse failure; only syntax errors abort the run.
//!
//! Exit codes follow the shared gate convention (`preimpl_cnn::exit`):
//! `0` clean, `1` the tool itself failed, `2` the lint gate tripped
//! (errors present, or warnings under `--deny-warnings`) — the same
//! contract as `flowstat diff --fail-on-regression`.

use preimpl_cnn::exit;
use preimpl_cnn::lint::{lookup, parse_waivers, Level, LintConfig, LintEngine, LintReport};
use preimpl_cnn::prelude::*;
use std::process::ExitCode;

struct Args {
    command: String,
    positional: Vec<String>,
    device: String,
    block: bool,
    json: bool,
    deny_warnings: bool,
    waivers: Option<String>,
    levels: Vec<(String, Level)>,
    threads: Option<usize>,
}

fn usage() -> String {
    "usage: pilint <archdef|db|design|codes> <inputs...> [--block] [--json] \
     [--deny-warnings] [--waivers FILE] [--allow CODE] [--warn CODE] \
     [--deny CODE] [--device NAME] [--threads N]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        positional: Vec::new(),
        device: "xcku5p-like".to_string(),
        block: false,
        json: false,
        deny_warnings: false,
        waivers: None,
        levels: Vec::new(),
        threads: None,
    };
    let level_flag = |argv: &mut dyn Iterator<Item = String>,
                      flag: &str,
                      level: Level|
     -> Result<(String, Level), String> {
        let code = argv.next().ok_or(format!("{flag} needs a lint code"))?;
        if lookup(&code).is_none() {
            return Err(format!("unknown lint code {code} (see `pilint codes`)"));
        }
        Ok((code, level))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--block" => args.block = true,
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--waivers" => {
                args.waivers = Some(argv.next().ok_or("--waivers needs a path")?);
            }
            "--allow" => args
                .levels
                .push(level_flag(&mut argv, "--allow", Level::Allow)?),
            "--warn" => args
                .levels
                .push(level_flag(&mut argv, "--warn", Level::Warn)?),
            "--deny" => args
                .levels
                .push(level_flag(&mut argv, "--deny", Level::Deny)?),
            "--device" => {
                args.device = argv.next().ok_or("--device needs a value")?;
            }
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a number".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(n);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn lint_config(args: &Args) -> Result<LintConfig, String> {
    let mut cfg = LintConfig::new().with_deny_warnings(args.deny_warnings);
    for (code, level) in &args.levels {
        cfg = cfg.with_level(code.clone(), *level);
    }
    if let Some(path) = &args.waivers {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        cfg = cfg.with_waivers(parse_waivers(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    Ok(cfg)
}

fn load_network(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Lenient: semantic defects become diagnostics, only syntax aborts.
    parse_archdef_lenient(&text).map_err(|e| e.to_string())
}

/// Write a rendering to stdout, tolerating a closed pipe (`pilint … | head`).
fn emit(text: &str) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing to stdout: {e}")),
    }
}

/// Render the report and map it onto the shared exit-code convention.
fn finish(report: &LintReport, args: &Args) -> Result<ExitCode, String> {
    if args.json {
        emit(&(report.render_json() + "\n"))?;
    } else {
        emit(&report.render_text())?;
    }
    if report.gate(args.deny_warnings) {
        eprintln!("pilint: gate tripped ({})", report.summary_line());
        Ok(ExitCode::from(exit::GATE))
    } else {
        Ok(ExitCode::from(exit::CLEAN))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exit::OPERATIONAL_ERROR)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if let Some(n) = args.threads {
        preimpl_cnn::flow::FlowConfig::new()
            .with_threads(n)
            .apply_parallelism();
    }
    let granularity = if args.block {
        Granularity::Block
    } else {
        Granularity::Layer
    };

    if args.command == "codes" {
        let mut table = String::new();
        for c in preimpl_cnn::lint::REGISTRY {
            table.push_str(&format!(
                "{}  {:<5} {:<20} {}\n",
                c.code,
                format!("{:?}", c.default).to_lowercase(),
                c.name,
                c.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            ));
        }
        emit(&table)?;
        return Ok(ExitCode::from(exit::CLEAN));
    }

    let engine = LintEngine::new(lint_config(&args)?);
    let obs = Obs::null();

    match args.command.as_str() {
        "archdef" => {
            let path = args
                .positional
                .first()
                .ok_or_else(|| format!("missing <archdef>\n{}", usage()))?;
            let network = load_network(path)?;
            let report = engine.lint_network(&network, granularity, &obs);
            finish(&report, &args)
        }
        "db" => {
            let dir = args
                .positional
                .first()
                .ok_or_else(|| format!("missing <db-dir>\n{}", usage()))?;
            let device = Device::catalog(&args.device).map_err(|e| e.to_string())?;
            let db = ComponentDb::load_dir(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            let report = match args.positional.get(1) {
                Some(archdef) => {
                    let network = load_network(archdef)?;
                    engine.lint_db_for_network(&network, granularity, &db, Some(&device), &obs)
                }
                None => engine.lint_db(&db, Some(&device), &obs),
            };
            finish(&report, &args)
        }
        "design" => {
            let archdef = args
                .positional
                .first()
                .ok_or_else(|| format!("missing <archdef>\n{}", usage()))?;
            let dir = args
                .positional
                .get(1)
                .ok_or_else(|| format!("missing <db-dir>\n{}", usage()))?;
            let device = Device::catalog(&args.device).map_err(|e| e.to_string())?;
            let network = load_network(archdef)?;
            let db = ComponentDb::load_dir(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            let mut report = engine.lint_network(&network, granularity, &obs);
            let coverage =
                engine.lint_db_for_network(&network, granularity, &db, Some(&device), &obs);
            report.merge(coverage);
            if report.errors() > 0 {
                // A broken network or database cannot be composed; report
                // what the early passes found instead of failing opaquely.
                return finish(&report, &args);
            }
            let (mut design, _) = preimpl_cnn::stitch::compose(
                &network,
                &db,
                &device,
                &preimpl_cnn::stitch::ComposeOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            preimpl_cnn::flow::pipeline_top_nets(&mut design);
            preimpl_cnn::pnr::route_assembled(
                &mut design,
                &device,
                &preimpl_cnn::pnr::RouteOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            report.merge(engine.lint_design(&design, &device, &obs));
            finish(&report, &args)
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}
