//! `pilint` — static-analysis front door for the pre-implemented flow.
//!
//! ```text
//! pilint archdef  <file>               lint a CNN architecture definition
//! pilint model    <file>               import + lint a model descriptor (.json/.prototxt)
//! pilint dataflow <file>               fixpoint FIFO/deadlock/rate analysis (PL04xx)
//! pilint db       <db-dir> [archdef]   lint a checkpoint database (+ coverage)
//! pilint design   <archdef> <db-dir>   compose + route, lint the assembled design
//! pilint trace    <trace.jsonl>        lint a recorded telemetry stream
//! pilint codes                         print the lint-code registry
//! ```
//!
//! All lint commands accept `--json`, `--deny-warnings`, `--waivers FILE`,
//! `--allow CODE` / `--warn CODE` / `--deny CODE` (repeatable),
//! `--device NAME` (default `xcku5p-like`), `--block` (block granularity)
//! and `--threads N`. `archdef` parses leniently so semantic defects (a
//! corrupted shape, an orphan layer) surface as diagnostics rather than a
//! parse failure; only syntax errors abort the run.
//!
//! `dataflow` takes any importable network description (archdef, `.json`,
//! `.prototxt` — format sniffed from the extension, archdef otherwise) and
//! runs the worklist fixpoint over arrival intervals: link-FIFO occupancy
//! bounds, skew-induced deadlock risk on reconvergent joins, token-rate
//! mismatches. `--fifo-depth N` sets the assumed link capacity (default
//! 64, the stitcher's); `--autosize` lints against the depths
//! `FlowConfig::with_fifo_autosize` would install instead.
//!
//! Waivers that match no finding are themselves flagged (`PL0001`) on the
//! merged report of each run.
//!
//! Exit codes follow the shared gate convention (`preimpl_cnn::exit`):
//! `0` clean, `1` the tool itself failed, `2` the lint gate tripped
//! (errors present, or warnings under `--deny-warnings`) — the same
//! contract as `flowstat diff --fail-on-regression`.

use preimpl_cnn::cli::{self, Cli, Flag};
use preimpl_cnn::exit;
use preimpl_cnn::lint::{lookup, parse_waivers, Level, LintConfig, LintEngine, LintReport};
use preimpl_cnn::prelude::*;
use std::process::ExitCode;

const USAGE: &str =
    "usage: pilint <archdef|model|dataflow|db|design|trace|codes> <inputs...> [--block] [--json] \
                     [--deny-warnings] [--waivers FILE] [--allow CODE] [--warn CODE] \
                     [--deny CODE] [--device NAME] [--threads N] [--fifo-depth N] [--autosize]";

const FLAGS: &[Flag] = &[
    Flag::switch("--block"),
    Flag::switch("--json"),
    Flag::switch("--deny-warnings"),
    Flag::switch("--autosize"),
    Flag::value("--waivers"),
    Flag::value("--allow"),
    Flag::value("--warn"),
    Flag::value("--deny"),
    Flag::value("--device"),
    Flag::value("--threads"),
    Flag::value("--fifo-depth"),
];

fn lint_config(args: &Cli) -> Result<LintConfig, String> {
    let mut cfg = LintConfig::new().with_deny_warnings(args.switch("--deny-warnings"));
    for (flag, level) in [
        ("--allow", Level::Allow),
        ("--warn", Level::Warn),
        ("--deny", Level::Deny),
    ] {
        for code in args.values(flag) {
            if lookup(code).is_none() {
                return Err(format!("unknown lint code {code} (see `pilint codes`)"));
            }
            cfg = cfg.with_level(code.to_string(), level);
        }
    }
    if let Some(path) = args.value("--waivers") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        cfg = cfg.with_waivers(parse_waivers(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    if let Some(depth) = args.value("--fifo-depth") {
        let depth: u64 = depth
            .parse()
            .map_err(|e| format!("--fifo-depth {depth}: {e}"))?;
        if depth == 0 {
            return Err("--fifo-depth must be at least 1".into());
        }
        cfg = cfg.with_link_fifo_depth(depth);
    }
    Ok(cfg)
}

fn load_network(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Lenient: semantic defects become diagnostics, only syntax aborts.
    parse_archdef_lenient(&text).map_err(|e| e.to_string())
}

/// Audit waivers on the merged report (this is the outermost point of any
/// pilint run, so "used in any pass" is fully known here), then render and
/// map onto the shared exit-code convention.
fn finish(report: &mut LintReport, args: &Cli) -> Result<ExitCode, String> {
    report.audit_waivers(&lint_config(args)?);
    if args.switch("--json") {
        cli::emit(&(report.render_json() + "\n"))?;
    } else {
        cli::emit(&report.render_text())?;
    }
    if report.gate(args.switch("--deny-warnings")) {
        eprintln!("pilint: gate tripped ({})", report.summary_line());
        Ok(ExitCode::from(exit::GATE))
    } else {
        Ok(ExitCode::from(exit::CLEAN))
    }
}

fn main() -> ExitCode {
    cli::run_main(run)
}

fn run() -> Result<ExitCode, String> {
    let args = cli::parse(FLAGS, USAGE)?;
    if let Some(n) = args.threads()? {
        preimpl_cnn::flow::FlowConfig::new()
            .with_threads(n)
            .apply_parallelism();
    }
    let granularity = args.granularity();

    if args.command == "codes" {
        let mut table = String::new();
        for c in preimpl_cnn::lint::REGISTRY {
            table.push_str(&format!(
                "{}  {:<5} {:<20} {}\n",
                c.code,
                format!("{:?}", c.default).to_lowercase(),
                c.name,
                c.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            ));
        }
        cli::emit(&table)?;
        return Ok(ExitCode::from(exit::CLEAN));
    }

    let engine = LintEngine::new(lint_config(&args)?);
    let obs = Obs::null();

    match args.command.as_str() {
        "archdef" => {
            let network = load_network(args.positional(0, "archdef", USAGE)?)?;
            let mut report = engine.lint_network(&network, granularity, &obs);
            finish(&mut report, &args)
        }
        "model" => {
            let path = args.positional(0, "model", USAGE)?;
            let format = preimpl_cnn::model::ModelFormat::from_path(path)
                .unwrap_or(preimpl_cnn::model::ModelFormat::Json);
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let (_, mut report) = engine.lint_model(&text, format, granularity, &obs);
            finish(&mut report, &args)
        }
        "dataflow" => {
            let path = args.positional(0, "model-or-archdef", USAGE)?;
            let format = preimpl_cnn::model::ModelFormat::from_path(path)
                .unwrap_or(preimpl_cnn::model::ModelFormat::Archdef);
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let (network, mut import_report) = engine.lint_model(&text, format, granularity, &obs);
            match network {
                // Import failed: the findings say why the dataflow pass
                // never got a graph to analyze.
                None => finish(&mut import_report, &args),
                Some(network) => {
                    let mut report = engine.lint_dataflow(
                        &network,
                        granularity,
                        args.switch("--autosize"),
                        &obs,
                    );
                    finish(&mut report, &args)
                }
            }
        }
        "db" => {
            let dir = args.positional(0, "db-dir", USAGE)?;
            let device = Device::catalog(args.device()).map_err(|e| e.to_string())?;
            let db = ComponentDb::load_dir(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            let mut report = match args.positional.get(1) {
                Some(archdef) => {
                    let network = load_network(archdef)?;
                    engine.lint_db_for_network(&network, granularity, &db, Some(&device), &obs)
                }
                None => engine.lint_db(&db, Some(&device), &obs),
            };
            finish(&mut report, &args)
        }
        "trace" => {
            let path = args.positional(0, "trace.jsonl", USAGE)?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            // A file that is not even parseable JSONL is an operational
            // error (like an archdef syntax error), not a lint finding.
            let events = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
            let raw = preimpl_cnn::lint::lint_trace(&events);
            let mut report = LintReport::from_raw(raw, &lint_config(&args)?);
            finish(&mut report, &args)
        }
        "design" => {
            let archdef = args.positional(0, "archdef", USAGE)?;
            let dir = args.positional(1, "db-dir", USAGE)?;
            let device = Device::catalog(args.device()).map_err(|e| e.to_string())?;
            let network = load_network(archdef)?;
            let db = ComponentDb::load_dir(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            let mut report = engine.lint_network(&network, granularity, &obs);
            let coverage =
                engine.lint_db_for_network(&network, granularity, &db, Some(&device), &obs);
            report.merge(coverage);
            if report.errors() > 0 {
                // A broken network or database cannot be composed; report
                // what the early passes found instead of failing opaquely.
                return finish(&mut report, &args);
            }
            let (mut design, _) = preimpl_cnn::stitch::compose(
                &network,
                &db,
                &device,
                &preimpl_cnn::stitch::ComposeOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            preimpl_cnn::flow::pipeline_top_nets(&mut design);
            preimpl_cnn::pnr::route_assembled(
                &mut design,
                &device,
                &preimpl_cnn::pnr::RouteOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            report.merge(engine.lint_design(&design, &device, &obs));
            finish(&mut report, &args)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}
