#!/usr/bin/env bash
# Repository CI gate: formatting, lints, then the tier-1 build+test pass.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

# Tier-1 runs under both scheduler regimes: the forced-sequential path
# (PI_THREADS=1) and the real worker pool (PI_THREADS=4). Results must be
# identical either way — only the execution schedule differs.
echo "==> tier-1: PI_THREADS=1 cargo test -q"
PI_THREADS=1 cargo test -q

echo "==> tier-1: PI_THREADS=4 cargo test -q"
PI_THREADS=4 cargo test -q

# Warm/cold smoke of the persistent component-database cache: the second
# run against the same --db-dir must serve every checkpoint from disk
# (zero pre-implementations) and assemble the identical accelerator.
echo "==> db-cache smoke: cold vs warm compose"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
printf 'network smoke\ninput 1x16x16\nconv c kernel=3 out=4\nfc f out=8\n' \
    > "$smoke_dir/arch.txt"
cold_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$smoke_dir/arch.txt" --db-dir "$smoke_dir/db" --seeds 2)"
warm_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$smoke_dir/arch.txt" --db-dir "$smoke_dir/db" --seeds 2)"
echo "$cold_out" | grep -F 'db-cache: 0 hits, 2 misses' >/dev/null \
    || { echo "cold run did not miss: $cold_out"; exit 1; }
echo "$warm_out" | grep -F 'db-cache: 2 hits, 0 misses' >/dev/null \
    || { echo "warm run did not hit: $warm_out"; exit 1; }
cold_line="$(echo "$cold_out" | grep '^assembled ')"
warm_line="$(echo "$warm_out" | grep '^assembled ')"
[ "$cold_line" = "$warm_line" ] \
    || { echo "warm result differs: '$cold_line' vs '$warm_line'"; exit 1; }
echo "    cold missed, warm hit, identical result: $warm_line"

echo "==> ci.sh: all gates passed"
