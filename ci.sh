#!/usr/bin/env bash
# Repository CI gate: formatting, lints, then the tier-1 build+test pass.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

# Tier-1 runs under both scheduler regimes: the forced-sequential path
# (PI_THREADS=1) and the real worker pool (PI_THREADS=4). Results must be
# identical either way — only the execution schedule differs.
echo "==> tier-1: PI_THREADS=1 cargo test -q"
PI_THREADS=1 cargo test -q

echo "==> tier-1: PI_THREADS=4 cargo test -q"
PI_THREADS=4 cargo test -q

echo "==> ci.sh: all gates passed"
