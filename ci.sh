#!/usr/bin/env bash
# Repository CI gate: formatting, lints, then the tier-1 build+test pass.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> ci.sh: all gates passed"
