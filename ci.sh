#!/usr/bin/env bash
# Repository CI gate: formatting, lints, then the tier-1 build+test pass.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

# Tier-1 runs under both scheduler regimes: the forced-sequential path
# (PI_THREADS=1) and the real worker pool (PI_THREADS=4). Results must be
# identical either way — only the execution schedule differs.
echo "==> tier-1: PI_THREADS=1 cargo test -q"
PI_THREADS=1 cargo test -q

echo "==> tier-1: PI_THREADS=4 cargo test -q"
PI_THREADS=4 cargo test -q

# Warm/cold smoke of the persistent component-database cache: the second
# run against the same --db-dir must serve every checkpoint from disk
# (zero pre-implementations) and assemble the identical accelerator.
echo "==> db-cache smoke: cold vs warm compose"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
printf 'network smoke\ninput 1x16x16\nconv c kernel=3 out=4\nfc f out=8\n' \
    > "$smoke_dir/arch.txt"
cold_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$smoke_dir/arch.txt" --db-dir "$smoke_dir/db" --seeds 2)"
warm_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$smoke_dir/arch.txt" --db-dir "$smoke_dir/db" --seeds 2)"
echo "$cold_out" | grep -F 'db-cache: 0 hits, 2 misses' >/dev/null \
    || { echo "cold run did not miss: $cold_out"; exit 1; }
echo "$warm_out" | grep -F 'db-cache: 2 hits, 0 misses' >/dev/null \
    || { echo "warm run did not hit: $warm_out"; exit 1; }
cold_line="$(echo "$cold_out" | grep '^assembled ')"
warm_line="$(echo "$warm_out" | grep '^assembled ')"
[ "$cold_line" = "$warm_line" ] \
    || { echo "warm result differs: '$cold_line' vs '$warm_line'"; exit 1; }
echo "    cold missed, warm hit, identical result: $warm_line"

# flowstat determinism gate: two LeNet-5 runs with the same seed (each
# against a FRESH --db-dir — a warm cache changes the event stream) must
# produce traces whose aggregated reports diff to zero deltas, and a
# perturbed run (different seed) must produce a non-empty diff that trips
# the --fail-on-regression gate with a non-zero exit.
echo "==> flowstat gate: same-seed LeNet runs diff to zero deltas"
fs_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fs_dir"' EXIT
printf 'network lenet5\ninput 1x32x32\nconv c1 kernel=5 out=6\npool p1 window=2\nconv c2 kernel=5 out=16\npool p2 window=2\nfc f1 out=120\nfc f2 out=84\nfc f3 out=10\n' \
    > "$fs_dir/lenet.txt"
cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --db-dir "$fs_dir/db1" --seeds 1 \
    --trace "$fs_dir/t1.jsonl" >/dev/null
cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --db-dir "$fs_dir/db2" --seeds 1 \
    --trace "$fs_dir/t2.jsonl" >/dev/null
diff_out="$(cargo run --release --quiet --bin flowstat -- \
    diff "$fs_dir/t1.jsonl" "$fs_dir/t2.jsonl")"
echo "$diff_out" | grep -F 'identical' >/dev/null \
    || { echo "same-seed flowstat diff not empty: $diff_out"; exit 1; }
cargo run --release --quiet --bin flowstat -- summarize "$fs_dir/t1.jsonl" \
    > "$fs_dir/s1.txt"
cargo run --release --quiet --bin flowstat -- summarize "$fs_dir/t2.jsonl" \
    > "$fs_dir/s2.txt"
cmp -s "$fs_dir/s1.txt" "$fs_dir/s2.txt" \
    || { echo "same-seed flowstat summaries not byte-identical"; exit 1; }
echo "    $diff_out"

echo "==> flowstat gate: perturbed run trips --fail-on-regression"
cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --db-dir "$fs_dir/db3" --seeds 2 \
    --trace "$fs_dir/t3.jsonl" >/dev/null
pert_out="$(cargo run --release --quiet --bin flowstat -- \
    diff "$fs_dir/t1.jsonl" "$fs_dir/t3.jsonl")"
echo "$pert_out" | grep -F 'identical' >/dev/null \
    && { echo "perturbed flowstat diff unexpectedly empty"; exit 1; }
if cargo run --release --quiet --bin flowstat -- \
    diff "$fs_dir/t1.jsonl" "$fs_dir/t3.jsonl" --fail-on-regression 0 \
    >/dev/null 2>&1; then
    echo "perturbed diff did not trip --fail-on-regression"; exit 1
fi
echo "    perturbed diff non-empty and gate exits non-zero, as required"

# Run-history trend gate: the same traces feed `flowstat record` into a
# fresh history; two same-seed runs must trend clean (exit 0), and
# appending the perturbed run must trip `flowstat trend
# --fail-on-regression` with the shared gate exit code 2.
echo "==> flowstat gate: run-history trend clean on same-seed, trips on perturbed"
hist_dir="$fs_dir/hist"
cargo run --release --quiet --bin flowstat -- \
    record "$fs_dir/t1.jsonl" --history "$hist_dir" --label lenet >/dev/null
cargo run --release --quiet --bin flowstat -- \
    record "$fs_dir/t2.jsonl" --history "$hist_dir" --label lenet >/dev/null
cargo run --release --quiet --bin flowstat -- \
    trend --history "$hist_dir" --fail-on-regression >/dev/null \
    || { echo "same-seed trend tripped the gate"; exit 1; }
cargo run --release --quiet --bin flowstat -- \
    record "$fs_dir/t3.jsonl" --history "$hist_dir" --label lenet >/dev/null
set +e
cargo run --release --quiet --bin flowstat -- \
    trend --history "$hist_dir" --fail-on-regression >/dev/null 2>&1
trend_rc=$?
set -e
[ "$trend_rc" -eq 2 ] \
    || { echo "perturbed trend exited $trend_rc, want 2"; exit 1; }
top_out="$(cargo run --release --quiet --bin flowstat -- \
    summarize "$fs_dir/t1.jsonl" --top 5)"
echo "$top_out" | grep -F 'flowstat hot spans: top' >/dev/null \
    || { echo "summarize --top produced no hot-span table: $top_out"; exit 1; }
trace_lint="$(cargo run --release --quiet --bin pilint -- trace "$fs_dir/t1.jsonl" --json)"
echo "$trace_lint" | grep -F '"errors": 0' >/dev/null \
    || { echo "recorded trace did not lint clean: $trace_lint"; exit 1; }
echo "    trend clean on same-seed, exit 2 on perturbed, hot spans render, trace lints clean"

# Router gate: the Steiner/slack router bench must beat its own star
# baseline on LeNet-5 (the bin self-gates with exit 2 on any speed or
# Fmax regression), produce byte-identical work telemetry at PI_THREADS=1
# and PI_THREADS=4, and hold the line against the checked-in seed trace
# `ci/router_lenet.seed.jsonl` — zero deltas, no silent drift in router
# work per pass.
echo "==> router gate: bench self-check, thread determinism, seed snapshot"
rt_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fs_dir" "$rt_dir"' EXIT
PI_THREADS=1 cargo run --release --quiet -p pi-bench --bin router -- \
    --networks lenet --seeds 1 --out "$rt_dir/r1.json" \
    --trace "$rt_dir/r1.jsonl" >/dev/null \
    || { echo "router bench regressed vs star baseline (PI_THREADS=1)"; exit 1; }
PI_THREADS=4 cargo run --release --quiet -p pi-bench --bin router -- \
    --networks lenet --seeds 1 --out "$rt_dir/r4.json" \
    --trace "$rt_dir/r4.jsonl" >/dev/null \
    || { echo "router bench regressed vs star baseline (PI_THREADS=4)"; exit 1; }
rt_diff="$(cargo run --release --quiet --bin flowstat -- \
    diff "$rt_dir/r1.jsonl" "$rt_dir/r4.jsonl")"
echo "$rt_diff" | grep -F 'identical' >/dev/null \
    || { echo "router telemetry differs across PI_THREADS: $rt_diff"; exit 1; }
cargo run --release --quiet --bin flowstat -- summarize "$rt_dir/r1.jsonl" \
    > "$rt_dir/rs1.txt"
cargo run --release --quiet --bin flowstat -- summarize "$rt_dir/r4.jsonl" \
    > "$rt_dir/rs4.txt"
cmp -s "$rt_dir/rs1.txt" "$rt_dir/rs4.txt" \
    || { echo "router summaries not byte-identical across PI_THREADS"; exit 1; }
seed_diff="$(cargo run --release --quiet --bin flowstat -- \
    diff ci/router_lenet.seed.jsonl "$rt_dir/r1.jsonl" --fail-on-regression 0)" \
    || { echo "router trace regressed vs checked-in seed: $seed_diff"; exit 1; }
echo "$seed_diff" | grep -F 'identical' >/dev/null \
    || { echo "router trace drifted from checked-in seed: $seed_diff"; exit 1; }
echo "    bench beat baseline, traces identical across threads and vs seed"

# pilint gate: both bundled models must lint clean under --deny-warnings
# (checked through the stable --json summary keys, not the text renderer),
# and a deliberately broken archdef must trip the gate with the shared
# exit-code convention (exactly 2: "ran fine, findings denied" — not 1,
# which would mean the tool itself failed).
echo "==> pilint gate: bundled models clean, broken fixture exits 2"
lint_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fs_dir" "$rt_dir" "$lint_dir"' EXIT
{
    printf 'network vgg16\ninput 3x224x224\n'
    for block in '1 64 2' '2 128 2' '3 256 3' '4 512 3' '5 512 3'; do
        set -- $block
        for c in $(seq 1 "$3"); do
            printf 'conv conv%s_%s kernel=3 stride=1 pad=1 out=%s\nrelu relu%s_%s\n' \
                "$1" "$c" "$2" "$1" "$c"
        done
        printf 'pool pool%s window=2\n' "$1"
    done
    printf 'fc fc1 out=4096\nrelu relu_fc1\nfc fc2 out=4096\nrelu relu_fc2\nfc fc3 out=1000\n'
} > "$lint_dir/vgg16.txt"
lenet_lint="$(cargo run --release --quiet --bin pilint -- \
    archdef "$fs_dir/lenet.txt" --deny-warnings --json)" \
    || { echo "LeNet-5 did not lint clean"; exit 1; }
echo "$lenet_lint" | grep -F '"errors": 0' >/dev/null \
    || { echo "LeNet-5 JSON summary lacks zero errors: $lenet_lint"; exit 1; }
vgg_lint="$(cargo run --release --quiet --bin pilint -- \
    archdef "$lint_dir/vgg16.txt" --deny-warnings --json)" \
    || { echo "VGG-16 did not lint clean"; exit 1; }
echo "$vgg_lint" | grep -F '"warnings": 0' >/dev/null \
    || { echo "VGG-16 JSON summary lacks zero warnings: $vgg_lint"; exit 1; }
printf 'network broken\ninput 1x4x4\nconv c kernel=9 out=2\n' > "$lint_dir/broken.txt"
set +e
cargo run --release --quiet --bin pilint -- \
    archdef "$lint_dir/broken.txt" >/dev/null 2>&1
lint_rc=$?
set -e
[ "$lint_rc" -eq 2 ] \
    || { echo "broken fixture exited $lint_rc, want 2"; exit 1; }
echo "    both models clean, broken fixture tripped the gate (exit 2)"

# Model-descriptor gate: every checked-in descriptor under models/ must
# import and lint clean (exit 0) through `pilint model`, and the LeNet
# that enters through the JSON descriptor must hold the line against the
# checked-in seed trace `ci/model_lenet.seed.jsonl` — zero deltas, so the
# descriptor frontend cannot silently change what the flow builds.
echo "==> model gate: descriptors lint clean, descriptor LeNet matches seed"
mdl_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fs_dir" "$rt_dir" "$lint_dir" "$mdl_dir"' EXIT
for m in models/*; do
    m_lint="$(cargo run --release --quiet --bin pilint -- \
        model "$m" --deny-warnings --json)" \
        || { echo "descriptor $m did not lint clean"; exit 1; }
    echo "$m_lint" | grep -F '"errors": 0' >/dev/null \
        || { echo "descriptor $m JSON summary lacks zero errors: $m_lint"; exit 1; }
done
cargo run --release --quiet --bin preimpl -- \
    compose --model models/lenet.json --db-dir "$mdl_dir/db" --seeds 1 \
    --trace "$mdl_dir/lenet_model.jsonl" >/dev/null
mdl_diff="$(cargo run --release --quiet --bin flowstat -- \
    diff ci/model_lenet.seed.jsonl "$mdl_dir/lenet_model.jsonl" \
    --fail-on-regression 0)" \
    || { echo "descriptor LeNet regressed vs checked-in seed: $mdl_diff"; exit 1; }
echo "$mdl_diff" | grep -F 'identical' >/dev/null \
    || { echo "descriptor LeNet drifted from checked-in seed: $mdl_diff"; exit 1; }
echo "    all descriptors lint clean, descriptor LeNet matches the seed trace"

# Dataflow gate: every checked-in descriptor must pass the PL04xx
# fixpoint analysis (FIFO occupancy / deadlock / rate) under
# --deny-warnings, and a ResNet whose skip path is artificially skewed
# (7x7 convolutions on the main path) must trip the deadlock finding with
# exit 2 — unless the link FIFOs are autosized, which must make the same
# topology analyze clean.
echo "==> pilint dataflow gate: descriptors clean, skewed skip trips, autosize clears"
for m in models/*; do
    df_lint="$(cargo run --release --quiet --bin pilint -- \
        dataflow "$m" --deny-warnings --json)" \
        || { echo "descriptor $m failed the dataflow gate"; exit 1; }
    echo "$df_lint" | grep -F '"errors": 0' >/dev/null \
        || { echo "dataflow summary for $m lacks zero errors: $df_lint"; exit 1; }
done
sed -e 's/"kernel": 3/"kernel": 7/g' -e 's/"pad": 1/"pad": 3/g' \
    models/resnet_small.json > "$mdl_dir/resnet_skewed.json"
set +e
skew_out="$(cargo run --release --quiet --bin pilint -- \
    dataflow "$mdl_dir/resnet_skewed.json" --json 2>/dev/null)"
skew_rc=$?
set -e
[ "$skew_rc" -eq 2 ] \
    || { echo "skewed ResNet exited $skew_rc, want 2"; exit 1; }
echo "$skew_out" | grep -F '"PL0400"' >/dev/null \
    || { echo "skewed ResNet missing PL0400: $skew_out"; exit 1; }
cargo run --release --quiet --bin pilint -- \
    dataflow "$mdl_dir/resnet_skewed.json" --deny-warnings --autosize >/dev/null \
    || { echo "autosize did not clear the skewed ResNet"; exit 1; }
echo "    descriptors clean, skewed skip tripped PL0400, autosize cleared it"

# Lint bench gate: the dataflow fixpoint bench must self-gate clean
# (convergence, clean bundled models, stable ResNet skip minimum), be
# byte-identical across PI_THREADS, and trend clean through the same
# run-history machinery the flow traces use.
echo "==> lint bench gate: fixpoint stable across threads, trend clean"
lb_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fs_dir" "$rt_dir" "$lint_dir" "$mdl_dir" "$lb_dir"' EXIT
PI_THREADS=1 cargo run --release --quiet -p pi-bench --bin lint -- \
    --out "$lb_dir/l1.json" --trace "$lb_dir/l1.jsonl" >/dev/null \
    || { echo "lint bench gate tripped (PI_THREADS=1)"; exit 1; }
PI_THREADS=4 cargo run --release --quiet -p pi-bench --bin lint -- \
    --out "$lb_dir/l4.json" --trace "$lb_dir/l4.jsonl" >/dev/null \
    || { echo "lint bench gate tripped (PI_THREADS=4)"; exit 1; }
lb_diff="$(cargo run --release --quiet --bin flowstat -- \
    diff "$lb_dir/l1.jsonl" "$lb_dir/l4.jsonl")"
echo "$lb_diff" | grep -F 'identical' >/dev/null \
    || { echo "lint telemetry differs across PI_THREADS: $lb_diff"; exit 1; }
cargo run --release --quiet --bin flowstat -- \
    record "$lb_dir/l1.jsonl" --history "$lb_dir/hist" --label lint >/dev/null
cargo run --release --quiet --bin flowstat -- \
    record "$lb_dir/l4.jsonl" --history "$lb_dir/hist" --label lint >/dev/null
cargo run --release --quiet --bin flowstat -- \
    trend --history "$lb_dir/hist" --fail-on-regression >/dev/null \
    || { echo "lint bench trend tripped the gate"; exit 1; }
echo "    bench self-gated clean, identical across threads, trend clean"

# pi-serve gate: a daemon on an ephemeral port must serve the same LeNet-5
# compose job `preimpl` runs locally — the remote trace diffs to zero
# deltas against the local cold run above — and a warm follow-up must be
# served entirely from the daemon's shared component cache.
echo "==> pi-serve gate: remote compose matches local run"
srv_dir="$(mktemp -d)"
serve_pid=""
trap 'rm -rf "$smoke_dir" "$fs_dir" "$rt_dir" "$lint_dir" "$mdl_dir" "$lb_dir" "$srv_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
cargo run --release --quiet --bin pi-serve -- \
    serve --bind 127.0.0.1:0 --db-dir "$srv_dir/db" --workers 2 \
    > "$srv_dir/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$srv_dir/serve.log" 2>/dev/null && break
    sleep 0.1
done
serve_addr="$(sed -n 's/^pi-serve listening on //p' "$srv_dir/serve.log")"
[ -n "$serve_addr" ] \
    || { echo "pi-serve did not start:"; cat "$srv_dir/serve.log"; exit 1; }
remote_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --remote "$serve_addr" --seeds 1 \
    --trace "$srv_dir/remote.jsonl")"
echo "$remote_out" | grep -q '^assembled ' \
    || { echo "remote compose produced no summary: $remote_out"; exit 1; }
remote_diff="$(cargo run --release --quiet --bin flowstat -- \
    diff "$fs_dir/t1.jsonl" "$srv_dir/remote.jsonl" --fail-on-regression 0)" \
    || { echo "remote trace regressed vs local: $remote_diff"; exit 1; }
echo "$remote_diff" | grep -F 'identical' >/dev/null \
    || { echo "remote trace differs from local run: $remote_diff"; exit 1; }
# Spliced cross-process report: `--remote --report` tags the job with a
# trace context, fetches the daemon's span tree and splices it under the
# local `serve:request` span. Same seed at PI_THREADS=1 and 4 must write
# byte-identical spliced reports containing the daemon-side span.
PI_THREADS=1 cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --remote "$serve_addr" --seeds 1 \
    --report "$srv_dir/spliced1.txt" >/dev/null
PI_THREADS=4 cargo run --release --quiet --bin preimpl -- \
    compose "$fs_dir/lenet.txt" --remote "$serve_addr" --seeds 1 \
    --report "$srv_dir/spliced4.txt" >/dev/null
cmp -s "$srv_dir/spliced1.txt" "$srv_dir/spliced4.txt" \
    || { echo "spliced remote reports differ across PI_THREADS"; exit 1; }
grep -q 'serve::job:run' "$srv_dir/spliced1.txt" \
    || { echo "spliced report is missing the daemon-side span tree"; exit 1; }
grep -q 'serve:request' "$srv_dir/spliced1.txt" \
    || { echo "spliced report is missing the client-side request span"; exit 1; }

# Live /metrics exposition: scrape through the CLI (no curl in the image)
# and require every line to be a well-formed Prometheus comment or sample,
# with the farm counters and wallclock histogram present.
cargo run --release --quiet --bin pi-serve -- \
    metrics --addr "$serve_addr" > "$srv_dir/metrics.txt"
awk '
    /^# (TYPE|HELP) / { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$/ { next }
    { print "malformed metrics line: " $0; bad = 1 }
    END { exit bad }
' "$srv_dir/metrics.txt" \
    || { echo "metrics exposition failed to parse"; exit 1; }
for metric in pi_serve_jobs_submitted_total pi_serve_jobs_completed_total \
    pi_serve_jobs_coalesced_total pi_serve_queue_depth \
    pi_serve_db_cache_hits_total pi_serve_job_wall_ms_compose_bucket \
    uptime_seconds; do
    grep -q "^$metric" "$srv_dir/metrics.txt" \
        || { echo "metrics exposition is missing $metric"; exit 1; }
done

warm_remote="$(cargo run --release --quiet --bin preimpl -- \
    build-db "$fs_dir/lenet.txt" --remote "$serve_addr" --seeds 1)"
echo "$warm_remote" | grep -Eq 'db-cache: [1-9][0-9]* hits, 0 misses' \
    || { echo "warm remote job did not hit the shared cache: $warm_remote"; exit 1; }
cargo run --release --quiet --bin pi-serve -- stop --addr "$serve_addr" >/dev/null
wait "$serve_pid"
serve_pid=""
echo "    remote trace identical to local, spliced reports thread-stable,"
echo "    metrics exposition parseable, warm job served from shared cache"

# Eviction smoke: a daemon with a 1-byte budget must evict on every
# insert — the job still completes, and the result's cache counters
# surface the evictions to the client.
echo "==> pi-serve gate: tiny --db-budget-bytes forces eviction"
cargo run --release --quiet --bin pi-serve -- \
    serve --bind 127.0.0.1:0 --db-dir "$srv_dir/tiny" --db-budget-bytes 1 \
    > "$srv_dir/tiny.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$srv_dir/tiny.log" 2>/dev/null && break
    sleep 0.1
done
tiny_addr="$(sed -n 's/^pi-serve listening on //p' "$srv_dir/tiny.log")"
[ -n "$tiny_addr" ] \
    || { echo "budgeted pi-serve did not start:"; cat "$srv_dir/tiny.log"; exit 1; }
evict_out="$(cargo run --release --quiet --bin preimpl -- \
    compose "$smoke_dir/arch.txt" --remote "$tiny_addr" --seeds 2)"
echo "$evict_out" | grep -q '^assembled ' \
    || { echo "budgeted compose failed: $evict_out"; exit 1; }
echo "$evict_out" | grep -Eq ' [1-9][0-9]* evicted' \
    || { echo "1-byte budget evicted nothing: $evict_out"; exit 1; }
cargo run --release --quiet --bin pi-serve -- stop --addr "$tiny_addr" >/dev/null
wait "$serve_pid"
serve_pid=""
echo "    budgeted daemon completed the job and reported evictions"

echo "==> ci.sh: all gates passed"
